"""Parallel parameter sweeps over (trace x policy x cache size) grids.

The figure-8/9 grids multiply 6 traces x 4 policies x 3 cache sizes;
runs are embarrassingly parallel, so the sweep fans jobs out over a
:class:`multiprocessing.Pool`.  Jobs are specified by *names and
numbers* (workload name, scale, policy name, kwargs) rather than live
objects so they pickle cheaply; each worker process regenerates and
memoises traces via :func:`repro.traces.workloads.get_workload`.

Set ``processes=1`` (or ``REPRO_SWEEP_PROCESSES=1``) for in-process
execution — required under pytest-benchmark and handy for debugging.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.metrics import ReplayMetrics
from repro.sim.replay import ReplayConfig, replay_cache_only, replay_trace
from repro.traces.workloads import DEFAULT_SCALE, get_workload

__all__ = ["SweepJob", "run_jobs", "grid_jobs"]


@dataclass(frozen=True)
class SweepJob:
    """One replay, specified by value (picklable)."""

    workload: str
    policy: str
    cache_bytes: int
    scale: float = DEFAULT_SCALE
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Extra ReplayConfig fields (e.g. gc_victim_policy,
    #: mapping_cache_bytes) as sorted key/value pairs.
    replay_kwargs: Tuple[Tuple[str, Any], ...] = ()
    cache_only: bool = False
    drain_at_end: bool = False

    def key(self) -> Tuple[str, str, int]:
        """(workload, policy, cache bytes) — the figure-grid cell key."""
        return (self.workload, self.policy, self.cache_bytes)


def _run_one(job: SweepJob) -> ReplayMetrics:
    trace = get_workload(job.workload, job.scale)
    config = ReplayConfig(
        policy=job.policy,
        cache_bytes=job.cache_bytes,
        policy_kwargs=dict(job.policy_kwargs),
        drain_at_end=job.drain_at_end,
        **dict(job.replay_kwargs),
    )
    runner = replay_cache_only if job.cache_only else replay_trace
    return runner(trace, config)


def run_jobs(
    jobs: Iterable[SweepJob], processes: Optional[int] = None
) -> List[ReplayMetrics]:
    """Run jobs (in order) and return their metrics (same order).

    ``processes`` defaults to ``REPRO_SWEEP_PROCESSES`` or the CPU
    count, capped at the job count; 1 means run inline.
    """
    jobs = list(jobs)
    if processes is None:
        env = os.environ.get("REPRO_SWEEP_PROCESSES")
        processes = int(env) if env else (os.cpu_count() or 1)
    processes = max(1, min(processes, len(jobs) or 1))
    if processes == 1 or len(jobs) <= 1:
        return [_run_one(job) for job in jobs]
    # 'fork' shares the already-imported package with workers; traces
    # are regenerated per worker and memoised there.
    ctx = get_context("fork")
    with ctx.Pool(processes) as pool:
        return pool.map(_run_one, jobs)


def grid_jobs(
    workloads: Iterable[str],
    policies: Iterable[str],
    cache_sizes_bytes: Iterable[int],
    scale: float = DEFAULT_SCALE,
    policy_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    cache_only: bool = False,
) -> List[SweepJob]:
    """The full cross product, ordered workload-major (figure order).

    ``policy_kwargs`` maps policy name -> constructor kwargs (e.g.
    ``{"reqblock": {"delta": 5}}``).
    """
    policy_kwargs = policy_kwargs or {}
    out: List[SweepJob] = []
    for w in workloads:
        for c in cache_sizes_bytes:
            for p in policies:
                kwargs = tuple(sorted(policy_kwargs.get(p, {}).items()))
                out.append(
                    SweepJob(
                        workload=w,
                        policy=p,
                        cache_bytes=c,
                        scale=scale,
                        policy_kwargs=kwargs,
                        cache_only=cache_only,
                    )
                )
    return out
