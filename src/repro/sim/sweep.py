"""Parallel parameter sweeps over (trace x policy x cache size) grids.

The figure-8/9 grids multiply 6 traces x 4 policies x 3 cache sizes;
runs are embarrassingly parallel, so the sweep fans jobs out through
the sharded engine (:mod:`repro.sim.parallel`).  Jobs are specified by
*names and numbers* (workload name, scale, policy name, kwargs) rather
than live objects so they pickle cheaply; each worker process
regenerates and memoises traces via
:func:`repro.traces.workloads.get_workload` (an MSR CSV path is loaded
from disk instead).

Each job is one self-contained deterministic replay, so a worker-run
cell is bit-identical to an inline one — the serial-vs-parallel
equivalence suite (``tests/sim/test_parallel_equivalence.py``) pins
this for every registered policy.

Set ``processes=1`` (or ``REPRO_SWEEP_PROCESSES=1``) for in-process
execution — required under pytest-benchmark and handy for debugging.
The start method follows :func:`repro.sim.parallel.resolve_start_method`
(``fork`` where available, ``spawn`` otherwise; override with
``REPRO_START_METHOD``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.metrics import ReplayMetrics
from repro.sim.parallel import run_shards
from repro.sim.progress import ProgressCallback
from repro.sim.replay import ReplayConfig, replay_cache_only, replay_trace
from repro.traces.model import Trace
from repro.traces.workloads import DEFAULT_SCALE, PAPER_WORKLOADS, get_workload

__all__ = ["SweepJob", "run_jobs", "grid_jobs"]


@dataclass(frozen=True)
class SweepJob:
    """One replay, specified by value (picklable)."""

    workload: str
    policy: str
    cache_bytes: int
    scale: float = DEFAULT_SCALE
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Extra ReplayConfig fields (e.g. gc_victim_policy,
    #: mapping_cache_bytes) as sorted key/value pairs.
    replay_kwargs: Tuple[Tuple[str, Any], ...] = ()
    cache_only: bool = False
    drain_at_end: bool = False
    #: Regenerate the workload under this seed instead of its default
    #: (seed-sensitivity studies); ``None`` uses the memoised trace.
    workload_seed: Optional[int] = None
    #: Multi-tenant population (see :mod:`repro.traces.tenants`):
    #: ``tenants`` > 1 replays an N-tenant population of ``workload``
    #: under the ``tenancy`` discipline; workers rebuild the population
    #: by value, so these jobs pickle as cheaply as single-tenant ones.
    #: ``tenants=None`` (default) is the legacy single-tenant job.
    tenants: Optional[int] = None
    tenancy: str = "shared"
    tenant_skew: float = 1.0
    tenant_seed: int = 0

    def key(self) -> Tuple[str, str, int]:
        """(workload, policy, cache bytes) — the figure-grid cell key."""
        return (self.workload, self.policy, self.cache_bytes)


def _job_trace(job: SweepJob) -> Trace:
    """The job's trace: a memoised paper workload, or an MSR CSV path."""
    if job.workload in PAPER_WORKLOADS:
        if job.workload_seed is not None:
            from repro.traces.synthetic import generate_trace
            from repro.traces.workloads import get_config

            cfg = replace(
                get_config(job.workload, job.scale), seed=job.workload_seed
            )
            return generate_trace(cfg)
        return get_workload(job.workload, job.scale)
    from repro.traces.msr import load_msr_trace

    return load_msr_trace(job.workload)


def _run_one(job: SweepJob) -> ReplayMetrics:
    tenancy_kwargs: Dict[str, Any] = {}
    if job.tenants is not None:
        from repro.traces.tenants import build_population

        trace, tenant_map, weights = build_population(
            job.workload,
            job.tenants,
            scale=job.scale,
            skew=job.tenant_skew,
            seed=job.tenant_seed,
        )
        tenancy_kwargs = {
            "tenancy": job.tenancy,
            "tenants": tenant_map,
            "tenant_weights": weights,
        }
    else:
        trace = _job_trace(job)
    config = ReplayConfig(
        policy=job.policy,
        cache_bytes=job.cache_bytes,
        policy_kwargs=dict(job.policy_kwargs),
        drain_at_end=job.drain_at_end,
        **tenancy_kwargs,
        **dict(job.replay_kwargs),
    )
    runner = replay_cache_only if job.cache_only else replay_trace
    return runner(trace, config)


def run_jobs(
    jobs: Iterable[SweepJob],
    processes: Optional[int] = None,
    start_method: Optional[str] = None,
    supervision: Optional[Any] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    report: Optional[Any] = None,
) -> List[ReplayMetrics]:
    """Run jobs (in order) and return their metrics (same order).

    ``processes`` defaults to ``REPRO_SWEEP_PROCESSES``, then the
    engine's resolution (``REPRO_JOBS`` or the CPU count), capped at
    the job count; 1 means run inline with no pool.  Worker failures
    raise :class:`repro.sim.parallel.ShardError` with the failing job
    and its traceback.

    ``supervision`` / ``checkpoint_path`` / ``resume`` switch the
    fan-out to :func:`repro.sim.supervisor.run_shards_supervised`
    (retry/timeout/checkpoint/salvage — see ``docs/resilience.md``);
    a salvaged job's slot holds ``None``.  ``report`` (a
    :class:`~repro.sim.supervisor.SupervisorReport`) accumulates the
    outcome so multi-sweep callers can settle one exit code at the end.
    """
    jobs = list(jobs)
    if processes is None:
        env = os.environ.get("REPRO_SWEEP_PROCESSES")
        processes = int(env) if env else None
    supervised = (
        supervision is not None
        or checkpoint_path is not None
        or resume
        or report is not None
    )
    if not supervised:
        return run_shards(
            _run_one,
            jobs,
            jobs=processes,
            start_method=start_method,
            progress=progress,
        )
    from repro.sim.supervisor import run_shards_supervised

    if checkpoint_path is not None and report is not None and report.calls:
        # One journal per fan-out: later sweeps of the same command get
        # numbered siblings instead of clobbering the first journal.
        checkpoint_path = f"{checkpoint_path}.{report.calls}"
    outcome = run_shards_supervised(
        _run_one,
        jobs,
        jobs=processes,
        start_method=start_method,
        supervision=supervision,
        checkpoint_path=checkpoint_path,
        resume=resume,
        progress=progress,
    )
    if report is not None:
        report.add(outcome)
    return outcome.results


def grid_jobs(
    workloads: Iterable[str],
    policies: Iterable[str],
    cache_sizes_bytes: Iterable[int],
    scale: float = DEFAULT_SCALE,
    policy_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    cache_only: bool = False,
) -> List[SweepJob]:
    """The full cross product, ordered workload-major (figure order).

    ``policy_kwargs`` maps policy name -> constructor kwargs (e.g.
    ``{"reqblock": {"delta": 5}}``).
    """
    policy_kwargs = policy_kwargs or {}
    out: List[SweepJob] = []
    for w in workloads:
        for c in cache_sizes_bytes:
            for p in policies:
                kwargs = tuple(sorted(policy_kwargs.get(p, {}).items()))
                out.append(
                    SweepJob(
                        workload=w,
                        policy=p,
                        cache_bytes=c,
                        scale=scale,
                        policy_kwargs=kwargs,
                        cache_only=cache_only,
                    )
                )
    return out
