"""Closed-loop (queue-depth-limited) trace replay.

The paper replays traces open-loop: requests are issued at their trace
timestamps regardless of how the device keeps up, so a slow policy
accumulates unbounded queueing delay.  Real hosts bound the number of
outstanding requests; this module adds that behaviour as an alternative
driver: request *i* is submitted at

    ``max(arrival_i, completion_{i - queue_depth}, submit_{i-1})``

i.e. no more than ``queue_depth`` requests are ever in flight, and
submissions stay time-ordered (a requirement of the resource
timelines).  Response time is still measured from the trace arrival, so
host-side queueing counts toward latency — the usual closed-loop
convention.

``queue_depth=None`` (unbounded) reproduces ``replay_trace`` exactly,
which the test-suite checks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.policy import ReqBlockCache
from repro.faults.injector import FaultInjector
from repro.faults.powerloss import inject_power_loss
from repro.faults.profile import get_profile
from repro.sim.metrics import ReplayMetrics
from repro.sim.replay import (
    METADATA_SAMPLE_INTERVAL,
    ReplayConfig,
    _build_policy,
    _resolve_accountant,
    _resolve_recorder,
    resolve_tracer,
    sized_ssd_for,
)
from repro.ssd.controller import RequestRecord, SSDController
from repro.ssd.flash import FlashOutOfSpace
from repro.traces.model import IORequest, Trace
from repro.utils.validation import require_positive

__all__ = ["replay_closed_loop"]


def replay_closed_loop(
    trace: Trace,
    config: ReplayConfig,
    queue_depth: Optional[int] = 32,
) -> ReplayMetrics:
    """Replay ``trace`` with at most ``queue_depth`` requests in flight.

    Returns the same :class:`ReplayMetrics` as ``replay_trace``;
    response times include host-side queueing delay (completion minus
    *trace arrival*).
    """
    if queue_depth is not None:
        require_positive(queue_depth, "queue_depth")
    policy = _build_policy(config)
    tracer, checker = resolve_tracer(config)
    ssd_config = config.ssd or sized_ssd_for(
        trace, over_provisioning=config.over_provisioning
    )
    profile = get_profile(config.fault_profile)
    faults = (
        FaultInjector(profile, seed=config.fault_seed)
        if profile is not None
        else None
    )
    controller = SSDController(
        ssd_config,
        policy,
        cache_service_ms_per_page=config.cache_service_ms_per_page,
        gc_victim_policy=config.gc_victim_policy,
        tracer=tracer,
        faults=faults,
        metrics=config.metrics,
    )
    if checker is not None:
        checker.attach(policy=policy, controller=controller)
    metrics = ReplayMetrics(
        trace_name=trace.name,
        policy_name=config.policy,
        cache_pages=config.cache_pages,
    )
    recorder, sampler = _resolve_recorder(config)
    accountant = _resolve_accountant(config)
    track_lists = config.log_lists and isinstance(policy, ReqBlockCache)
    last_index, last_time = -1, 0.0

    completions: Deque[float] = deque()
    last_submit = 0.0
    power_report = None
    for i, request in enumerate(trace):
        submit = max(request.time, last_submit)
        if queue_depth is not None and len(completions) >= queue_depth:
            # The oldest outstanding request must finish before the next
            # submission slot opens.
            submit = max(submit, completions.popleft())
        last_submit = submit
        shifted = (
            request
            if submit == request.time
            else IORequest(submit, request.op, request.lpn, request.npages)
        )
        try:
            record = controller.submit(shifted)
            if config.power_loss_at is not None and i == config.power_loss_at:
                power_report = inject_power_loss(
                    controller,
                    submit,
                    at_request=i,
                    capacitor_pages=config.capacitor_pages,
                    profile=profile,
                )
        except FlashOutOfSpace as exc:
            metrics.aborted_reason = str(exc)
            metrics.aborted_at_request = i
            break
        completion = submit + record.response_ms
        completions.append(completion)
        if queue_depth is not None:
            while len(completions) > queue_depth:
                completions.popleft()
        # Latency accounting from the *trace* arrival.
        queued_record = RequestRecord(
            response_ms=completion - request.time, outcome=record.outcome
        )
        metrics.record(request, queued_record)
        if accountant is not None:
            accountant.record(request, queued_record)
        last_index, last_time = i, submit
        if recorder is not None:
            recorder.record(request, queued_record)
            sampler.maybe_sample(i, submit)
        if i % METADATA_SAMPLE_INTERVAL == 0:
            metrics.metadata_bytes.add(policy.metadata_bytes())
        if track_lists and i % config.sample_interval == 0 and i > 0:
            metrics.list_log.append((i, policy.list_page_counts()))

    if sampler is not None and last_index >= 0:
        sampler.finalize(last_index, last_time)
        metrics.metrics_series = sampler.series
    if accountant is not None:
        metrics.tenants = accountant.stats
    metrics.host_flush_pages = controller.flushed_pages
    metrics.gc_migrated_pages = controller.gc.stats.pages_migrated
    metrics.gc_erases = controller.gc.stats.blocks_erased
    metrics.flash_total_writes = controller.total_flash_writes
    if (
        faults is not None
        or power_report is not None
        or controller.degraded.active
        or metrics.aborted
    ):
        durability = controller.durability_report()
        durability.power_loss = power_report
        metrics.durability = durability
    if checker is not None:
        checker.close()
    return metrics
