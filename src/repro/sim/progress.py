"""Per-shard progress reporting for the parallel engine.

Both :func:`repro.sim.parallel.run_shards` and the supervisor
(:mod:`repro.sim.supervisor`) accept an optional ``progress`` callback
receiving one :class:`ProgressEvent` per shard state change —
completion, retry, timeout, permanent failure, or checkpoint resume.
:func:`make_progress_printer` turns the stream into the one-line-per
-shard report behind the ``--progress`` CLI flag.

The ETA estimator is deliberately simple: ``elapsed / done *
remaining``.  Because ``elapsed`` is wall-clock over the whole fan-out,
the pool width is already priced in — no per-shard bookkeeping, and the
estimate tightens as shards drain.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

__all__ = [
    "ProgressEvent",
    "ProgressCallback",
    "EtaTracker",
    "make_progress_printer",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One shard state change, as seen by a ``progress`` callback.

    ``kind`` is one of ``"done"`` (shard completed), ``"retry"`` (a
    failed attempt was rescheduled), ``"timeout"`` (the watchdog killed
    a hung worker), ``"failed"`` (retries exhausted; shard salvaged
    away) or ``"resumed"`` (result loaded from a checkpoint journal).
    """

    kind: str
    #: Shard index within the payload list.
    index: int
    #: Attempt number the event refers to (1-based; 0 for ``resumed``).
    attempt: int
    #: Shards complete so far (including resumed ones).
    done: int
    #: Total shards in the run.
    total: int
    #: Wall-clock seconds since the fan-out started.
    elapsed_s: float
    #: Estimated seconds to completion (None until one shard finishes).
    eta_s: Optional[float] = None
    #: First line of the failure reason, for retry/timeout/failed events.
    detail: str = ""


ProgressCallback = Callable[[ProgressEvent], None]


class EtaTracker:
    """Completion counting + the shared ETA estimate for one fan-out."""

    __slots__ = ("total", "done", "_t0")

    def __init__(self, total: int) -> None:
        self.total = total
        self.done = 0
        self._t0 = time.monotonic()

    def elapsed_s(self) -> float:
        """Wall-clock seconds since the tracker was created."""
        return time.monotonic() - self._t0

    def mark_done(self) -> None:
        """Record one more completed shard."""
        self.done += 1

    def eta_s(self) -> Optional[float]:
        """Estimated seconds left: ``elapsed / done * remaining``."""
        if self.done >= self.total:
            return 0.0
        if self.done == 0:
            return None
        return self.elapsed_s() / self.done * (self.total - self.done)

    def event(
        self, kind: str, index: int, attempt: int, detail: str = ""
    ) -> ProgressEvent:
        """Build a :class:`ProgressEvent` at the current state."""
        return ProgressEvent(
            kind=kind,
            index=index,
            attempt=attempt,
            done=self.done,
            total=self.total,
            elapsed_s=self.elapsed_s(),
            eta_s=self.eta_s(),
            detail=detail,
        )


def _fmt_seconds(s: Optional[float]) -> str:
    if s is None:
        return "?"
    if s >= 90.0:
        return f"{s / 60.0:.1f}m"
    return f"{s:.1f}s"


def make_progress_printer(stream: Optional[TextIO] = None) -> ProgressCallback:
    """A callback printing one line per event (default: stderr).

    The format is stable enough to grep but not a parsing contract:

    ``[shard 3/8] done      idx=5 attempt=1 elapsed=2.1s eta=3.4s``
    """

    def _print(event: ProgressEvent) -> None:
        out = stream if stream is not None else sys.stderr
        line = (
            f"[shard {event.done}/{event.total}] {event.kind:<8} "
            f"idx={event.index} attempt={event.attempt} "
            f"elapsed={_fmt_seconds(event.elapsed_s)} "
            f"eta={_fmt_seconds(event.eta_s)}"
        )
        if event.detail:
            line += f" ({event.detail})"
        print(line, file=out)

    return _print
