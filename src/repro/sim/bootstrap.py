"""Bootstrap confidence intervals for policy comparisons.

The paper evaluates each policy on a single replay per trace.  Because
our traces are generated, we can do better: re-generate each workload
under several seeds and ask whether Req-block's improvement is robust —
a percentile-bootstrap confidence interval over the per-seed improvement
ratios.  Used by ``experiments.seed_sensitivity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import require_in_range, require_positive

__all__ = ["BootstrapResult", "bootstrap_ci", "paired_improvement"]


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """A point estimate with its percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    n_samples: int

    @property
    def excludes_zero(self) -> bool:
        """Whether the interval lies strictly on one side of zero."""
        return self.low > 0.0 or self.high < 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = self.confidence * 100
        return (
            f"{self.estimate:+.3f} "
            f"[{self.low:+.3f}, {self.high:+.3f}] ({pct:.0f}% CI, "
            f"n={self.n_samples})"
        )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = None,
    n_boot: int = 4000,
    confidence: float = 0.95,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapResult:
    """Percentile bootstrap CI of ``statistic`` (default: mean).

    With a single sample the interval degenerates to the point estimate
    (no resampling variability to measure) — callers should prefer at
    least 5 seeds.
    """
    xs = np.asarray(list(samples), dtype=np.float64)
    require_positive(len(xs), "number of samples")
    require_in_range(confidence, "confidence", 0.5, 0.999)
    stat = statistic or (lambda a: float(np.mean(a)))
    point = stat(xs)
    if len(xs) == 1:
        return BootstrapResult(point, point, point, confidence, 1)
    rng = resolve_rng(rng, seed)
    idx = rng.integers(0, len(xs), size=(n_boot, len(xs)))
    boots = np.array([stat(xs[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(boots, [alpha, 1.0 - alpha])
    return BootstrapResult(point, float(low), float(high), confidence, len(xs))


def paired_improvement(
    treatment: Sequence[float], baseline: Sequence[float]
) -> List[float]:
    """Per-pair relative improvement ``t/b - 1`` (e.g. hit-ratio gain).

    Pairs must correspond (same seed); zero baselines are skipped.
    """
    if len(treatment) != len(baseline):
        raise ValueError(
            f"length mismatch: {len(treatment)} vs {len(baseline)}"
        )
    return [t / b - 1.0 for t, b in zip(treatment, baseline) if b > 0]
