"""Run ledger: a durable, queryable record of every CLI run.

Completed experiments used to leave only whatever stdout the caller
captured — no seeds, no engine, no git revision, no artifact paths.
The ledger fixes that: every ``replay`` / ``compare`` / ``experiment``
invocation writes a ``run.json`` manifest into a ``runs/`` directory
(``REPRO_RUNS_DIR`` or ``--runs-dir`` override; ``--no-ledger`` opts
out), recording the argv, configuration, environment
(:mod:`repro.utils.buildinfo`), wall-clock duration, outcome, artifact
paths, and any anomaly findings (:mod:`repro.obs.anomaly`).

Each run gets its own directory ``runs/<run_id>/`` so artifacts that
belong to the run — a ``flightdump.json``, exported metrics — have a
natural home next to the manifest.  Manifests are written via the
tmp-file + ``os.replace`` discipline (checkpoint-journal style), so a
killed run never leaves a torn ``run.json``; an *unfinished* run is
simply a run directory without one, which ``repro runs list`` reports
as such.

Ledger writes are best-effort by design: a full disk or read-only
``runs/`` must never turn a successful replay into a failure, so
:meth:`RunLedger.finish` swallows write errors (and remembers them on
``write_error`` for tests).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.buildinfo import buildinfo

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "RUNS_DIR_ENV",
    "DEFAULT_RUNS_DIR",
    "RunLedger",
    "resolve_runs_dir",
    "new_run_id",
    "write_manifest",
    "list_runs",
    "load_run",
    "find_run",
    "diff_runs",
]

MANIFEST_NAME = "run.json"
MANIFEST_VERSION = 1
RUNS_DIR_ENV = "REPRO_RUNS_DIR"
DEFAULT_RUNS_DIR = "runs"

#: Exit code -> manifest outcome label.  Codes come from the CLI
#: (0 / EXIT_ABORTED=3 / EXIT_SALVAGED=4); anything else is a failure.
_OUTCOMES = {0: "ok", 3: "aborted", 4: "salvaged"}


def resolve_runs_dir(explicit: Optional[str] = None) -> str:
    """The runs directory: explicit > ``REPRO_RUNS_DIR`` > ``runs/``."""
    if explicit:
        return explicit
    return os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR


_run_seq = 0


def new_run_id(command: str = "run") -> str:
    """A sortable, human-scannable run id: UTC timestamp + command +
    pid.  The pid keeps concurrent processes distinct; a per-process
    sequence suffix keeps repeated in-process runs (library drivers,
    tests calling ``main()`` in a loop) distinct within one second —
    and still lexicographically after their unsuffixed predecessor."""
    global _run_seq
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S")
    base = f"{stamp}-{command}-{os.getpid()}"
    seq, _run_seq = _run_seq, _run_seq + 1
    return base if seq == 0 else f"{base}-{seq:03d}"


def outcome_label(exit_code: int) -> str:
    """Manifest outcome string for a CLI exit code."""
    return _OUTCOMES.get(exit_code, "failed")


def write_manifest(manifest: Dict[str, Any], run_dir: str) -> str:
    """Atomically write ``run.json`` into ``run_dir``; returns its path."""
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, MANIFEST_NAME)
    fd, tmp = tempfile.mkstemp(prefix=".run-", dir=run_dir)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass
class RunLedger:
    """One run's open ledger entry: start it, decorate it, finish it.

    The CLI creates a ledger before dispatching a subcommand, hands it
    to the handler (which may attach a summary, findings, or artifact
    files under :attr:`run_dir`), and finishes it with the handler's
    exit code.  ``finish`` is idempotent and never raises.
    """

    command: str
    argv: List[str] = field(default_factory=list)
    runs_dir: str = DEFAULT_RUNS_DIR
    run_id: str = ""
    #: Free-form run configuration (policy, scale, engine, seeds...).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Headline numbers (e.g. ``ReplayMetrics.summary()``).
    summary: Dict[str, Any] = field(default_factory=dict)
    #: Anomaly findings as dicts (:func:`repro.obs.anomaly.finding_to_dict`).
    findings: List[Dict[str, Any]] = field(default_factory=list)
    #: name -> path of files that belong to this run.
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: Extra durability facts (e.g. ``DurabilityReport.to_dict()``).
    durability: Optional[Dict[str, Any]] = None
    write_error: Optional[str] = None
    manifest_path: Optional[str] = None
    _t0: float = field(default_factory=time.monotonic)
    _started_at: str = field(
        default_factory=lambda: datetime.now(timezone.utc).isoformat()
    )

    def __post_init__(self) -> None:
        if not self.run_id:
            self.run_id = new_run_id(self.command)

    @property
    def run_dir(self) -> str:
        """This run's directory (``runs/<run_id>``), created on demand."""
        path = os.path.join(self.runs_dir, self.run_id)
        try:
            os.makedirs(path, exist_ok=True)
        except OSError:
            pass
        return path

    def add_artifact(self, name: str, path: str) -> None:
        """Record a file produced by this run."""
        self.artifacts[name] = os.path.abspath(path)

    def finish(self, exit_code: int, error: Optional[str] = None) -> Optional[str]:
        """Write the manifest; returns its path (None when writing failed
        or the ledger already finished)."""
        if self.manifest_path is not None:
            return self.manifest_path
        manifest: Dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": list(self.argv),
            "started_at": self._started_at,
            "finished_at": datetime.now(timezone.utc).isoformat(),
            "duration_s": round(time.monotonic() - self._t0, 3),
            "exit_code": int(exit_code),
            "outcome": outcome_label(exit_code),
            "config": dict(self.config),
            "env": buildinfo(),
        }
        if self.summary:
            manifest["summary"] = dict(self.summary)
        if self.findings:
            manifest["findings"] = list(self.findings)
        if self.artifacts:
            manifest["artifacts"] = dict(self.artifacts)
        if self.durability is not None:
            manifest["durability"] = dict(self.durability)
        if error:
            manifest["error"] = error
        try:
            self.manifest_path = write_manifest(
                manifest, os.path.join(self.runs_dir, self.run_id)
            )
        except OSError as exc:
            self.write_error = str(exc)
            print(
                f"warning: run ledger write failed: {exc}", file=sys.stderr
            )
            return None
        return self.manifest_path


# ----------------------------------------------------------------------
# Querying
# ----------------------------------------------------------------------


def list_runs(runs_dir: Optional[str] = None) -> List[Dict[str, Any]]:
    """All manifests under ``runs_dir``, oldest first.

    A run directory without a readable ``run.json`` (crashed before
    finishing, or torn by hand) is reported as an ``unfinished`` stub
    rather than silently skipped — those are exactly the runs a
    postmortem wants to see.
    """
    root = resolve_runs_dir(runs_dir)
    if not os.path.isdir(root):
        return []
    out: List[Dict[str, Any]] = []
    for name in sorted(os.listdir(root)):
        run_dir = os.path.join(root, name)
        if not os.path.isdir(run_dir):
            continue
        path = os.path.join(run_dir, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            out.append(
                {"run_id": name, "outcome": "unfinished", "command": "?"}
            )
            continue
        out.append(manifest)
    return out


def load_run(run_id: str, runs_dir: Optional[str] = None) -> Dict[str, Any]:
    """The manifest of one run by exact id."""
    root = resolve_runs_dir(runs_dir)
    path = os.path.join(root, run_id, MANIFEST_NAME)
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def find_run(prefix: str, runs_dir: Optional[str] = None) -> Dict[str, Any]:
    """The manifest whose run id equals or uniquely starts with
    ``prefix`` (``latest`` selects the most recent finished run)."""
    root = resolve_runs_dir(runs_dir)
    runs = [r for r in list_runs(root) if r.get("outcome") != "unfinished"]
    if not runs:
        raise FileNotFoundError(f"no finished runs under {root!r}")
    if prefix == "latest":
        return runs[-1]
    exact = [r for r in runs if r.get("run_id") == prefix]
    if exact:
        return exact[0]
    matches = [r for r in runs if str(r.get("run_id", "")).startswith(prefix)]
    if not matches:
        raise FileNotFoundError(f"no run matches {prefix!r} under {root!r}")
    if len(matches) > 1:
        ids = ", ".join(str(r["run_id"]) for r in matches[:5])
        raise ValueError(f"run prefix {prefix!r} is ambiguous ({ids}...)")
    return matches[0]


#: Manifest keys diffing skips: they differ between any two runs by
#: construction and would drown the interesting deltas.
_DIFF_NOISE = ("run_id", "started_at", "finished_at", "duration_s")


def diff_runs(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Flat key-path diff of two manifests: ``(path, a_value, b_value)``.

    Nested dicts are flattened with dotted paths; lists compare
    wholesale.  Timestamps/ids are excluded (see ``_DIFF_NOISE``).
    """

    def flatten(doc: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
        flat: Dict[str, Any] = {}
        for key, value in doc.items():
            path = f"{prefix}{key}"
            if path in _DIFF_NOISE:
                continue
            if isinstance(value, dict):
                flat.update(flatten(value, f"{path}."))
            else:
                flat[path] = value
        return flat

    fa, fb = flatten(a), flatten(b)
    out: List[Tuple[str, Any, Any]] = []
    for path in sorted(set(fa) | set(fb)):
        va, vb = fa.get(path), fb.get(path)
        if va != vb:
            out.append((path, va, vb))
    return out
