"""Replay harness: open/closed-loop drivers, metrics, reporting, sweeps,
export and bootstrap statistics."""

from repro.sim.bootstrap import BootstrapResult, bootstrap_ci, paired_improvement
from repro.sim.closed_loop import replay_closed_loop
from repro.sim.export import metrics_to_rows, write_csv, write_json
from repro.sim.metrics import ReplayMetrics, merge_metrics
from repro.sim.parallel import (
    ShardError,
    ShardPlan,
    ShardSpec,
    derive_shard_seed,
    plan_segments,
    replay_sharded,
    resolve_start_method,
    run_shards,
    shard_trace,
)
from repro.sim.replay import (
    ReplayConfig,
    replay_cache_only,
    replay_trace,
    sized_ssd_for,
    written_footprint,
)
from repro.sim.report import banner, format_series, format_table, normalize, sparkline
from repro.sim.runner import CachedSweepRunner, job_key
from repro.sim.sweep import SweepJob, grid_jobs, run_jobs
from repro.sim.tenant import (
    TENANCY_MODES,
    TenantAccountant,
    TenantStats,
    tenant_rows,
)

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "paired_improvement",
    "replay_closed_loop",
    "metrics_to_rows",
    "write_csv",
    "write_json",
    "ReplayMetrics",
    "merge_metrics",
    "ShardError",
    "ShardPlan",
    "ShardSpec",
    "derive_shard_seed",
    "plan_segments",
    "replay_sharded",
    "resolve_start_method",
    "run_shards",
    "shard_trace",
    "ReplayConfig",
    "replay_cache_only",
    "replay_trace",
    "sized_ssd_for",
    "written_footprint",
    "banner",
    "sparkline",
    "CachedSweepRunner",
    "job_key",
    "format_series",
    "format_table",
    "normalize",
    "SweepJob",
    "grid_jobs",
    "run_jobs",
    "TENANCY_MODES",
    "TenantAccountant",
    "TenantStats",
    "tenant_rows",
]
