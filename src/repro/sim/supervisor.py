"""Shard supervision: retry, watchdog timeouts, checkpointing, salvage.

:func:`repro.sim.parallel.run_shards` is fail-fast by design: the first
worker error aborts the whole fan-out, a hung worker hangs the run, and
a crash loses every completed shard.  That is the right default for
tests, but a multi-hour experiment sweep needs the same resilience the
simulated SSD itself models — retry ladders, watchdog recovery, and
mount-time salvage of whatever survived.  This module supervises each
shard in its own worker process:

* **Retry with deterministic backoff** — a failed or crashed shard is
  relaunched up to ``max_retries`` times; the backoff jitter derives
  from ``SeedSequence(retry_seed, spawn_key=(index, attempt))``
  (the engine's seed convention), so a retried schedule is
  reproducible.  Shard *results* are unaffected by retries: every
  attempt replays the same payload with the same seeds.
* **Watchdog timeouts** — with ``shard_timeout`` set, an attempt that
  exceeds its wall-clock budget is terminated (SIGTERM, then SIGKILL)
  and rescheduled like any other failure.  A hung worker can no longer
  hang the run.
* **Crash-safe checkpointing** — with a journal attached
  (:mod:`repro.sim.checkpoint`), every completed shard is fsynced to
  disk before it counts; a resumed run loads the journal, skips the
  completed shards and re-merges byte-identical results.
* **Salvage** — with ``salvage=True``, a shard that exhausts its
  retries is recorded as failed instead of aborting the run; callers
  get the surviving results plus the failure manifest (coverage
  fraction, failed indices) and mark their merged output degraded,
  mirroring the controller's ``DegradedMode``.

Supervision runs one OS process per shard attempt (at most ``jobs``
concurrently).  Unlike a shared pool, a stuck or killed attempt can be
reaped without poisoning its siblings — the same isolation argument as
per-plane bad-block management.  The process-per-attempt overhead is
noise against replay-sized shards; use plain :func:`run_shards` for
micro-payloads.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import ShardRetry, ShardSalvage, ShardTimeout
from repro.obs.flight import FlightRecorder, activate, deactivate
from repro.sim.checkpoint import CheckpointJournal, payload_digest, run_key
from repro.sim.telemetry import (
    DEFAULT_FRAME_INTERVAL_S,
    TelemetryFrame,
    clear_frame_sink,
    set_frame_sink,
)
from repro.sim.parallel import (
    ShardError,
    _sigterm_as_interrupt,
    resolve_jobs,
    resolve_start_method,
)
from repro.sim.progress import EtaTracker, ProgressCallback

__all__ = [
    "EXIT_SALVAGED",
    "Supervision",
    "ShardFailure",
    "SupervisedOutcome",
    "SupervisorReport",
    "run_shards_supervised",
]

#: Process exit code for a salvaged (degraded but delivered) run —
#: distinct from argparse's 2 and the device-fatal ``EXIT_ABORTED`` 3.
EXIT_SALVAGED = 4

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
_REAP_GRACE_S = 5.0


@dataclass(frozen=True)
class Supervision:
    """Retry/timeout/salvage policy for one supervised fan-out."""

    #: Relaunches allowed per shard after its first attempt.
    max_retries: int = 0
    #: Wall-clock budget per attempt in seconds (None = no watchdog).
    shard_timeout: Optional[float] = None
    #: First-retry backoff; doubles per attempt up to ``backoff_cap_s``.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    #: Keep going when a shard exhausts its retries, reporting it in
    #: the outcome's failure manifest instead of raising.
    salvage: bool = False
    #: Entropy for the deterministic backoff jitter.
    retry_seed: int = 0

    def backoff_s(self, index: int, attempt: int) -> float:
        """Backoff before retrying ``index`` after failed ``attempt``.

        Exponential in the attempt number with deterministic jitter in
        ``[0.5, 1.0]×`` derived from ``(retry_seed, index, attempt)``
        via ``SeedSequence`` spawn keys — the repo's seed convention —
        so two runs of the same schedule back off identically while
        distinct shards stay decorrelated.
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** (attempt - 1)),
        )
        ss = np.random.SeedSequence(
            entropy=int(self.retry_seed), spawn_key=(int(index), int(attempt))
        )
        u = int(ss.generate_state(1, dtype=np.uint64)[0]) / 2.0**64
        return base * (0.5 + 0.5 * u)


@dataclass(frozen=True)
class ShardFailure:
    """One shard that exhausted its retries."""

    index: int
    #: Attempts executed (first try + retries).
    attempts: int
    #: How many of those attempts were watchdog timeouts.
    timeouts: int
    #: Last attempt's traceback / timeout description.
    detail: str


@dataclass
class SupervisedOutcome:
    """What one supervised fan-out produced.

    ``results`` is payload-ordered; a salvaged-away shard leaves
    ``None`` at its index and an entry in ``failures``.
    """

    results: List[Any]
    failures: List[ShardFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    #: Shards skipped because the checkpoint journal already held them.
    resumed: int = 0
    #: shard index -> flight dump shipped back by a flight-enabled
    #: worker (first dump per shard wins, like the recorder itself).
    flightdumps: Dict[int, Any] = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.results)

    @property
    def failed_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(f.index for f in self.failures))

    @property
    def complete(self) -> bool:
        """True when every shard produced a result."""
        return not self.failures

    @property
    def coverage(self) -> float:
        """Fraction of planned shards that completed."""
        if not self.results:
            return 1.0
        return 1.0 - len(self.failures) / len(self.results)


@dataclass
class SupervisorReport:
    """Accumulates outcomes across the several fan-outs of one command.

    An experiment may issue more than one ``run_jobs`` call; the CLI
    hands every call this report so it can decide one exit code (and
    suffix per-call checkpoint paths) afterwards.
    """

    outcomes: List[SupervisedOutcome] = field(default_factory=list)

    def add(self, outcome: SupervisedOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def calls(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[ShardFailure]:
        return [f for o in self.outcomes for f in o.failures]

    @property
    def salvaged(self) -> bool:
        return any(o.failures for o in self.outcomes)

    @property
    def retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def timeouts(self) -> int:
        return sum(o.timeouts for o in self.outcomes)

    @property
    def resumed(self) -> int:
        return sum(o.resumed for o in self.outcomes)

    @property
    def flightdumps(self) -> List[Any]:
        """Every flight dump shipped back, across all fan-outs."""
        return [
            dump
            for o in self.outcomes
            for _, dump in sorted(o.flightdumps.items())
        ]

    def describe(self) -> str:
        """One-line summary for the CLI's stderr report."""
        total = sum(o.n_shards for o in self.outcomes)
        failed = len(self.failures)
        return (
            f"{total - failed}/{total} shards completed "
            f"({self.retries} retries, {self.timeouts} timeouts, "
            f"{self.resumed} resumed); failed shards: "
            f"{sorted(f.index for f in self.failures) or 'none'}"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _send_quiet(conn: Connection, message: Any) -> None:
    try:
        conn.send(message)
    except Exception:
        pass


class _ShardTerminated(BaseException):
    """Raised inside a flight-enabled worker by its SIGTERM handler.

    Deliberately a ``BaseException`` (and *not* ``KeyboardInterrupt``):
    it must unwind through any worker-level ``except Exception`` cleanup
    so the flight dump ships, and the parent must see the attempt as
    *failed* (retryable/salvageable), not as a user interrupt.
    """


def _child_entry(
    conn: Connection,
    worker: Callable[[Any], Any],
    payload: Any,
    index: int = 0,
    flight: bool = False,
    telemetry_interval: Optional[float] = None,
) -> None:
    """Supervised worker body: one attempt, result over the pipe.

    By default the SIGTERM disposition is reset so the watchdog's
    ``terminate()`` kills a stuck attempt promptly even when the parent
    installed its own handler before forking.  With ``flight`` set the
    worker instead activates an ambient :class:`FlightRecorder` and
    turns SIGTERM into :class:`_ShardTerminated`, so a reaped attempt
    unwinds through the replay's dump path and ships its last events
    back as a ``("flightdump", dump)`` message before dying.  With
    ``telemetry_interval`` set the worker installs a frame sink that
    forwards :class:`TelemetryFrame` progress readings as
    ``("frame", frame)`` messages.  Results that fail to pickle are
    reported as failures rather than dying silently.
    """
    recorder: Optional[FlightRecorder] = None
    if flight:
        recorder = FlightRecorder()
        activate(recorder)

        def _on_term(signum: int, _frame: Any) -> None:
            raise _ShardTerminated(f"terminated by signal {signum}")

        try:
            signal.signal(signal.SIGTERM, _on_term)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    else:
        try:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    if telemetry_interval is not None:
        set_frame_sink(
            lambda frame: _send_quiet(conn, ("frame", frame)),
            shard=index,
            interval_s=telemetry_interval,
        )
    try:
        result = worker(payload)
    except KeyboardInterrupt:
        _send_quiet(conn, ("interrupted", None))
    except BaseException as exc:
        if recorder is not None:
            # First recorded dump wins: if the replay loop already
            # snapshot the abort, this is a no-op that returns it.
            dump = recorder.record_dump(
                f"worker_death: {type(exc).__name__}: {exc}",
                context={"shard": index},
            )
            _send_quiet(conn, ("flightdump", dump))
        _send_quiet(conn, ("failed", traceback.format_exc()))
    else:
        if recorder is not None and recorder.last_dump is not None:
            # The replay recorded a dump but returned normally (an
            # aborted/degraded device run); ship it ahead of the result.
            _send_quiet(conn, ("flightdump", recorder.last_dump))
        try:
            conn.send(("ok", result))
        except Exception:
            _send_quiet(conn, ("failed", traceback.format_exc()))
    finally:
        if telemetry_interval is not None:
            clear_frame_sink()
        if recorder is not None:
            deactivate()
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class _Attempt:
    index: int
    attempt: int
    ready_at: float


@dataclass
class _Running:
    proc: Any
    index: int
    attempt: int
    started: float
    deadline: Optional[float]


def _reap(proc: Any) -> None:
    """Terminate and join one worker; escalate to SIGKILL if needed."""
    if proc.is_alive():
        proc.terminate()
    proc.join(_REAP_GRACE_S)
    if proc.is_alive():  # pragma: no cover - needs an unkillable child
        proc.kill()
        proc.join()


def run_shards_supervised(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
    supervision: Optional[Supervision] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    flight: bool = False,
    telemetry: Optional[Callable[[TelemetryFrame], None]] = None,
) -> SupervisedOutcome:
    """Run ``worker`` over ``payloads`` under supervision.

    Same contract as :func:`repro.sim.parallel.run_shards` — picklable
    worker and payloads, results in payload order — plus the
    resilience semantics of :class:`Supervision`.  Each attempt runs in
    its own process (at most ``jobs`` at a time), so one shard's hang
    or crash never poisons another's worker.

    ``checkpoint_path`` attaches a crash-safe journal; with ``resume``
    an existing journal's completed shards are loaded instead of
    re-run (a missing file just starts fresh).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives
    ``shards.*_total`` counters; ``tracer`` receives
    :class:`~repro.obs.events.ShardRetry` /
    :class:`~repro.obs.events.ShardTimeout` /
    :class:`~repro.obs.events.ShardSalvage` events.

    ``flight`` activates a :class:`~repro.obs.flight.FlightRecorder`
    inside every worker; a dying, timed-out, or aborted attempt ships
    its dump back, collected in ``outcome.flightdumps`` keyed by shard
    index.  ``telemetry`` (a callable taking
    :class:`~repro.sim.telemetry.TelemetryFrame`) turns on live
    progress frames from the replay loops inside workers.

    Raises :class:`~repro.sim.parallel.ShardError` when a shard
    exhausts its retries and ``salvage`` is off; with ``salvage`` on it
    returns the surviving results and the failure manifest.
    """
    payloads = list(payloads)
    n = len(payloads)
    sup = supervision if supervision is not None else Supervision()
    outcome = SupervisedOutcome(results=[None] * n)
    if n == 0:
        return outcome

    counters = None
    if metrics is not None:
        counters = {
            "completed": metrics.counter("shards.completed_total"),
            "retried": metrics.counter("shards.retried_total"),
            "timeout": metrics.counter("shards.timeout_total"),
            "failed": metrics.counter("shards.failed_total"),
            "resumed": metrics.counter("shards.resumed_total"),
        }
    emit = tracer is not None and getattr(tracer, "enabled", False)

    # -- checkpoint journal ------------------------------------------------
    journal: Optional[CheckpointJournal] = None
    digests: List[str] = []
    completed: Dict[int, Any] = {}
    if checkpoint_path:
        digests = [payload_digest(p) for p in payloads]
        key = run_key(worker, digests)
        if resume and os.path.exists(checkpoint_path):
            journal, completed, _torn = CheckpointJournal.resume(
                checkpoint_path, key, n
            )
        else:
            journal = CheckpointJournal.create(checkpoint_path, key, n)

    tracker = EtaTracker(n)
    for index in sorted(completed):
        outcome.results[index] = completed[index]
        outcome.resumed += 1
        tracker.mark_done()
        if counters:
            counters["resumed"].inc()
        if progress:
            progress(tracker.event("resumed", index, 0))

    pending = [
        _Attempt(index=i, attempt=1, ready_at=0.0)
        for i in range(n)
        if i not in completed
    ]
    running: Dict[Connection, _Running] = {}
    timeouts_by_index: Dict[int, int] = {}
    width = resolve_jobs(jobs, max(1, len(pending)))
    ctx = get_context(resolve_start_method(start_method))

    def _complete(run: _Running, value: Any) -> None:
        outcome.results[run.index] = value
        tracker.mark_done()
        if journal is not None:
            journal.append(run.index, digests[run.index], value)
        if counters:
            counters["completed"].inc()
        if progress:
            progress(tracker.event("done", run.index, run.attempt))

    def _fail_or_retry(run: _Running, detail: str) -> None:
        first_line = detail.strip().splitlines()[-1] if detail.strip() else detail
        if run.attempt <= sup.max_retries:
            delay = sup.backoff_s(run.index, run.attempt)
            pending.append(
                _Attempt(run.index, run.attempt + 1, time.monotonic() + delay)
            )
            outcome.retries += 1
            if counters:
                counters["retried"].inc()
            if emit:
                tracer.emit(
                    ShardRetry(
                        tracker.elapsed_s(), run.index, run.attempt, first_line
                    )
                )
            if progress:
                progress(
                    tracker.event("retry", run.index, run.attempt, first_line)
                )
            return
        failure = ShardFailure(
            index=run.index,
            attempts=run.attempt,
            timeouts=timeouts_by_index.get(run.index, 0),
            detail=detail,
        )
        if counters:
            counters["failed"].inc()
        if not sup.salvage:
            raise ShardError(run.index, payloads[run.index], detail)
        outcome.failures.append(failure)
        if progress:
            progress(tracker.event("failed", run.index, run.attempt, first_line))

    try:
        with _sigterm_as_interrupt():
            while pending or running:
                now = time.monotonic()
                # Launch every ready attempt a free slot can take,
                # lowest shard index first for a deterministic schedule.
                while len(running) < width and pending:
                    ready = [a for a in pending if a.ready_at <= now]
                    if not ready:
                        break
                    att = min(ready, key=lambda a: a.index)
                    pending.remove(att)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_entry,
                        args=(
                            child_conn,
                            worker,
                            payloads[att.index],
                            att.index,
                            flight,
                            DEFAULT_FRAME_INTERVAL_S
                            if telemetry is not None
                            else None,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    deadline = (
                        now + sup.shard_timeout
                        if sup.shard_timeout is not None
                        else None
                    )
                    running[parent_conn] = _Running(
                        proc, att.index, att.attempt, now, deadline
                    )
                if not running:
                    # Everything left is backing off; sleep to the
                    # earliest ready time.
                    delay = min(a.ready_at for a in pending) - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    continue
                # Wait for the next result, watchdog deadline, or
                # backoff expiry — whichever comes first.
                wake_times = [
                    r.deadline for r in running.values() if r.deadline is not None
                ]
                if len(running) < width and pending:
                    wake_times.append(min(a.ready_at for a in pending))
                timeout = (
                    max(0.0, min(wake_times) - time.monotonic())
                    if wake_times
                    else None
                )
                for conn in connection_wait(list(running), timeout=timeout):
                    run = running[conn]
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError):
                        running.pop(conn)
                        conn.close()
                        run.proc.join()
                        _fail_or_retry(
                            run,
                            f"worker process died before reporting a result "
                            f"(exit code {run.proc.exitcode})",
                        )
                        continue
                    # Streaming messages leave the attempt running; any
                    # further buffered message keeps the FD readable so
                    # ``connection_wait`` returns this conn again.
                    if status == "frame":
                        if telemetry is not None:
                            try:
                                telemetry(value)
                            except Exception:
                                pass
                        continue
                    if status == "flightdump":
                        outcome.flightdumps.setdefault(run.index, value)
                        continue
                    running.pop(conn)
                    conn.close()
                    run.proc.join()
                    if status == "ok":
                        _complete(run, value)
                    elif status == "interrupted":
                        raise KeyboardInterrupt
                    else:
                        _fail_or_retry(run, str(value))
                # Watchdog: reap attempts past their deadline.
                now = time.monotonic()
                for conn in [
                    c
                    for c, r in running.items()
                    if r.deadline is not None and now >= r.deadline
                ]:
                    run = running.pop(conn)
                    _reap(run.proc)
                    # A flight-enabled worker's SIGTERM handler ships a
                    # dump on its way down; collect whatever the dead
                    # attempt left buffered before closing the pipe.
                    try:
                        while conn.poll(0):
                            status, value = conn.recv()
                            if status == "flightdump":
                                outcome.flightdumps.setdefault(
                                    run.index, value
                                )
                            elif status == "frame" and telemetry is not None:
                                telemetry(value)
                    except (EOFError, OSError):
                        pass
                    conn.close()
                    outcome.timeouts += 1
                    timeouts_by_index[run.index] = (
                        timeouts_by_index.get(run.index, 0) + 1
                    )
                    if counters:
                        counters["timeout"].inc()
                    if emit:
                        tracer.emit(
                            ShardTimeout(
                                tracker.elapsed_s(),
                                run.index,
                                run.attempt,
                                float(sup.shard_timeout or 0.0),
                            )
                        )
                    if progress:
                        progress(
                            tracker.event(
                                "timeout",
                                run.index,
                                run.attempt,
                                f"no result within {sup.shard_timeout:g}s",
                            )
                        )
                    _fail_or_retry(
                        run,
                        f"shard {run.index} timed out after "
                        f"{sup.shard_timeout:g}s (attempt {run.attempt})",
                    )
    except BaseException:
        for run in running.values():
            _reap(run.proc)
        raise
    finally:
        if journal is not None:
            journal.close()

    if outcome.failures and emit:
        tracer.emit(
            ShardSalvage(
                tracker.elapsed_s(), outcome.failed_indices, outcome.coverage
            )
        )
    return outcome
