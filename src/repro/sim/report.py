"""Plain-text table / series formatting for experiment output.

Every experiment prints the rows or series of its paper figure through
these helpers, so benchmark output is uniform and diffable (the
EXPERIMENTS.md paper-vs-measured records are generated from it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "normalize", "format_series", "banner", "sparkline"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def fmt(cell: object) -> str:
        """Render one cell (floats via float_fmt)."""
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        """Join one row with column alignment."""
        parts = [
            cells[0].ljust(widths[0]),
            *(c.rjust(w) for c, w in zip(cells[1:], widths[1:])),
        ]
        return "  ".join(parts)

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def normalize(
    values: Mapping[str, float], base_key: str, invert: bool = False
) -> Dict[str, float]:
    """Normalise a mapping of values to one entry (the paper's style).

    ``invert=False`` divides each value by the base (Fig. 8: response
    time normalised to LRU); ``invert=True`` divides the base by each
    value.  A zero base yields zeros rather than raising, since a
    degenerate run should still produce a readable table.
    """
    base = values[base_key]
    out: Dict[str, float] = {}
    for key, v in values.items():
        if invert:
            out[key] = base / v if v else 0.0
        else:
            out[key] = v / base if base else 0.0
    return out


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], y_fmt: str = "{:.3f}"
) -> str:
    """One labelled x/y series (for figures that are line plots)."""
    pairs = ", ".join(f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """An ASCII sparkline of a series (down-sampled to ``width``).

    Used by experiments that print time series (Fig. 13's occupancy,
    MRC curves) so trends are visible in plain terminal output.
    """
    vals = list(values)
    if not vals:
        return ""
    # A non-positive width would divide by zero in the stride below;
    # clamp rather than crash (callers sometimes derive width from a
    # series length they have not checked).
    width = max(1, width)
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[len(_SPARK_CHARS) // 2] * len(vals)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((v - lo) / span * scale))] for v in vals
    )


def banner(text: str, width: int = 72) -> str:
    """A section banner for experiment output."""
    bar = "=" * width
    return f"{bar}\n{text}\n{bar}"
