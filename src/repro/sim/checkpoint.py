"""Crash-safe shard checkpoint journal.

The supervisor (:mod:`repro.sim.supervisor`) appends every completed
shard's pickled result to a journal so an interrupted run — crash,
``kill -9``, power loss — can resume without recomputing finished
shards.  The on-disk discipline mirrors the power-loss story the
simulator itself models (:mod:`repro.faults.powerloss`): the journal
*header* is created atomically (tmp file + ``os.replace`` + directory
fsync), and every record append is flushed and fsynced before the
shard is considered durable.  A crash can therefore leave at most one
*torn record* at the tail; recovery verifies each record's checksum,
keeps the intact prefix, and truncates the tail so the journal is
append-clean again — exactly how the simulated FTL's OOB mount scan
drops the half-programmed page.

Framing (all little-endian):

``b"SHRD" | uint32 body length | sha256(body)[:16] | body``

where ``body`` is ``pickle`` of the header dict (first record) or of a
``(shard index, payload digest, result)`` tuple.  The header carries a
*run key* — a hash over the worker's qualified name and every payload's
pickle — so a journal can never resume a different run's shards; each
record additionally carries its own payload digest, so a reordered or
edited payload list invalidates exactly the shards it changed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CheckpointError",
    "JournalRecord",
    "JournalState",
    "CheckpointJournal",
    "payload_digest",
    "run_key",
]

#: Per-record framing magic.
RECORD_MAGIC = b"SHRD"
#: Truncated sha256 prefix guarding each record body.
DIGEST_LEN = 16
#: Journal format identity, stored in the header record.
JOURNAL_MAGIC = "repro-shard-journal"
JOURNAL_VERSION = 1
#: Pickle protocol pinned so digests are stable across interpreter runs.
PICKLE_PROTOCOL = 4

_LEN = struct.Struct("<I")
_FRAME_OVERHEAD = len(RECORD_MAGIC) + _LEN.size + DIGEST_LEN


class CheckpointError(RuntimeError):
    """The journal cannot be used for this run (wrong run, bad header)."""


def payload_digest(payload: Any) -> str:
    """Stable content digest of one shard payload (hex sha256)."""
    return hashlib.sha256(
        pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    ).hexdigest()


def run_key(worker: Any, payload_digests: Sequence[str]) -> str:
    """Identity of one fan-out: the worker plus every payload digest.

    Two runs share a run key exactly when they would execute the same
    worker over the same payload values — the condition under which
    resuming one from the other's journal is sound.
    """
    h = hashlib.sha256()
    name = (
        f"{getattr(worker, '__module__', '?')}."
        f"{getattr(worker, '__qualname__', repr(worker))}"
    )
    h.update(name.encode())
    h.update(_LEN.pack(len(payload_digests)))
    for digest in payload_digests:
        h.update(digest.encode())
    return h.hexdigest()


def _frame(body: bytes) -> bytes:
    return (
        RECORD_MAGIC
        + _LEN.pack(len(body))
        + hashlib.sha256(body).digest()[:DIGEST_LEN]
        + body
    )


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename survives power loss (best effort)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class JournalRecord:
    """One durable shard result."""

    index: int
    payload_digest: str
    result: Any


@dataclass
class JournalState:
    """Everything recovery learned from reading a journal."""

    header: Dict[str, Any]
    records: List[JournalRecord] = field(default_factory=list)
    #: Byte offset of the end of the last intact record — where an
    #: append-after-recovery must resume writing.
    intact_bytes: int = 0
    #: True when a torn/garbage tail was dropped during the scan.
    truncated_tail: bool = False


def _read_record(fh: BinaryIO) -> Optional[bytes]:
    """The next intact record body, or None at EOF / first torn record."""
    head = fh.read(_FRAME_OVERHEAD)
    if len(head) < _FRAME_OVERHEAD:
        return None
    if head[: len(RECORD_MAGIC)] != RECORD_MAGIC:
        return None
    (length,) = _LEN.unpack(
        head[len(RECORD_MAGIC) : len(RECORD_MAGIC) + _LEN.size]
    )
    checksum = head[_FRAME_OVERHEAD - DIGEST_LEN :]
    body = fh.read(length)
    if len(body) < length:
        return None
    if hashlib.sha256(body).digest()[:DIGEST_LEN] != checksum:
        return None
    return body


def read_journal(path: str) -> JournalState:
    """Scan a journal, keeping the intact record prefix.

    Any framing anomaly — short read, bad magic, checksum mismatch,
    unpicklable body — ends the scan: everything before it is kept,
    everything after is a torn tail to be truncated and re-run.  The
    header record must be intact and well-formed, otherwise the file is
    not a journal at all (:class:`CheckpointError`).
    """
    with open(path, "rb") as fh:
        body = _read_record(fh)
        if body is None:
            raise CheckpointError(f"{path}: missing or corrupt journal header")
        try:
            header = pickle.loads(body)
        except Exception as exc:
            raise CheckpointError(f"{path}: unreadable journal header") from exc
        if (
            not isinstance(header, dict)
            or header.get("magic") != JOURNAL_MAGIC
            or header.get("version") != JOURNAL_VERSION
        ):
            raise CheckpointError(
                f"{path}: not a version-{JOURNAL_VERSION} shard journal"
            )
        state = JournalState(header=header, intact_bytes=fh.tell())
        while True:
            body = _read_record(fh)
            if body is None:
                break
            try:
                index, digest, result = pickle.loads(body)
            except Exception:
                break
            state.records.append(JournalRecord(int(index), str(digest), result))
            state.intact_bytes = fh.tell()
        fh.seek(0, os.SEEK_END)
        state.truncated_tail = fh.tell() != state.intact_bytes
    return state


class CheckpointJournal:
    """Append handle over one run's journal file.

    Use :meth:`create` for a fresh run and :meth:`resume` to pick an
    interrupted run back up; both return a journal positioned for
    crash-safe appends.
    """

    def __init__(self, path: str, header: Dict[str, Any], fh: BinaryIO) -> None:
        self.path = path
        self.header = header
        self._fh: Optional[BinaryIO] = fh

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str, key: str, n_shards: int) -> "CheckpointJournal":
        """Start a fresh journal, atomically (tmp + rename + fsync)."""
        header = {
            "magic": JOURNAL_MAGIC,
            "version": JOURNAL_VERSION,
            "run_key": key,
            "n_shards": int(n_shards),
        }
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(_frame(pickle.dumps(header, protocol=PICKLE_PROTOCOL)))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path)
        return cls(path, header, open(path, "ab"))

    @classmethod
    def resume(
        cls, path: str, key: str, n_shards: int
    ) -> Tuple["CheckpointJournal", Dict[int, Any], bool]:
        """Reopen an interrupted run's journal.

        Returns ``(journal, completed, truncated_tail)`` where
        ``completed`` maps shard index -> durable result for every
        intact record whose index is in range (first record wins on the
        crash-window duplicate).  Records left torn by the interruption
        are dropped and the file is truncated back to the intact
        prefix, so subsequent appends extend a clean journal.  A run
        key or shard count mismatch raises :class:`CheckpointError` —
        resuming a different run's journal silently would merge wrong
        results.
        """
        state = read_journal(path)
        if state.header.get("run_key") != key:
            raise CheckpointError(
                f"{path}: journal belongs to a different run "
                "(worker or payloads changed); delete it or pass a fresh "
                "--checkpoint path"
            )
        if state.header.get("n_shards") != int(n_shards):
            raise CheckpointError(
                f"{path}: journal plans {state.header.get('n_shards')} shards, "
                f"this run plans {n_shards}"
            )
        completed: Dict[int, Any] = {}
        for record in state.records:
            if 0 <= record.index < n_shards and record.index not in completed:
                completed[record.index] = record
        if state.truncated_tail:
            with open(path, "r+b") as fh:
                fh.truncate(state.intact_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return (
            cls(path, state.header, open(path, "ab")),
            {
                index: record.result
                for index, record in completed.items()
            },
            state.truncated_tail,
        )

    # ------------------------------------------------------------------
    def append(self, index: int, digest: str, result: Any) -> None:
        """Durably record one completed shard (write + flush + fsync)."""
        if self._fh is None:
            raise CheckpointError(f"{self.path}: journal is closed")
        body = pickle.dumps(
            (int(index), digest, result), protocol=PICKLE_PROTOCOL
        )
        self._fh.write(_frame(body))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Release the file handle; idempotent."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
