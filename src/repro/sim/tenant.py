"""Per-tenant replay accounting: who hit, who missed, who got evicted.

The cache layer partitions (or deliberately doesn't — ``shared`` mode);
this module *measures*.  A :class:`TenantAccountant` rides the replay
loop, attributing every serviced request to the tenant owning its LBA
zone and every evicted page to the tenant that owned *that* page.  The
two attributions differ on purpose: in a shared cache, tenant 0's
insert can evict tenant 7's pages, and that cross-tenant eviction
pressure is exactly the noisy-neighbor signal the QoS experiments
report.

Per-tenant rollups live in :class:`TenantStats`, built from the same
mergeable primitives as :class:`repro.sim.metrics.ReplayMetrics`
(``RatioCounter`` / ``RunningStats`` / ``ReservoirQuantiles``), so
shard results reduce with the identical left-fold-in-shard-order
discipline — serial and ``--jobs N`` replays agree on every per-tenant
number (pinned by ``tests/sim/test_tenant_replay.py``).

Tenancy modes (``TENANCY_MODES``): ``shared`` replays the plain policy
(zero accounting overhead unless tenants are configured); ``static``
and ``proportional`` wrap it in a
:class:`repro.cache.tenant.TenantPartitioner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.ssd.controller import RequestRecord
from repro.traces.model import IORequest
from repro.traces.tenants import TenantMap
from repro.utils.stats import RatioCounter, ReservoirQuantiles, RunningStats

__all__ = [
    "TENANCY_MODES",
    "TenantStats",
    "TenantAccountant",
    "tenant_rows",
]

#: Cache-sharing disciplines selectable via ``--tenancy`` /
#: ``ReplayConfig.tenancy``.  ``shared`` = one cache, no partitioner
#: (the legacy data path); the other two build a ``TenantPartitioner``.
TENANCY_MODES = ("shared", "static", "proportional")

#: Reservoir size for per-tenant response quantiles.  Smaller than the
#: global reservoir (4096): with up to dozens of tenants the memory
#: multiplies, and per-tenant p95 needs far less resolution than the
#: headline p99.
TENANT_RESERVOIR = 512

#: Per-tenant gauges are only exported for populations up to this size;
#: beyond it the registry would drown in series (the accountant itself
#: has no such limit — stats are kept for every tenant).
MAX_TENANT_GAUGES = 64


def _tenant_reservoir() -> ReservoirQuantiles:
    return ReservoirQuantiles(capacity=TENANT_RESERVOIR)


@dataclass(slots=True)
class TenantStats:
    """One tenant's replay rollup; merges like every other shard metric."""

    requests: int = 0
    pages: RatioCounter = field(default_factory=RatioCounter)
    response_ms: RunningStats = field(default_factory=RunningStats)
    response_quantiles: ReservoirQuantiles = field(
        default_factory=_tenant_reservoir
    )
    #: Pages of *this tenant's data* evicted from DRAM — regardless of
    #: whose request triggered the eviction (see module docstring).
    evicted_pages: int = 0
    #: Eviction batches that contained at least one of this tenant's
    #: pages.
    evictions: int = 0

    def merge(self, other: "TenantStats") -> "TenantStats":
        """Fold another shard's rollup in (``other`` is not modified)."""
        self.requests += other.requests
        self.pages.merge(other.pages)
        self.response_ms.merge(other.response_ms)
        self.response_quantiles.merge(other.response_quantiles)
        self.evicted_pages += other.evicted_pages
        self.evictions += other.evictions
        return self

    @property
    def hit_ratio(self) -> float:
        return self.pages.ratio

    def p95_ms(self) -> float:
        return self.response_quantiles.quantile(0.95)

    def summary(self) -> Dict[str, float]:
        """Flat dict of this tenant's headline numbers."""
        return {
            "requests": self.requests,
            "hit_ratio": self.hit_ratio,
            "mean_response_ms": self.response_ms.mean,
            "p95_response_ms": self.p95_ms(),
            "evicted_pages": self.evicted_pages,
            "evictions": self.evictions,
        }


class TenantAccountant:
    """Folds serviced requests into per-tenant :class:`TenantStats`.

    Stats are pre-created for every tenant so idle tenants still show
    up (with zeros) in reports, and so the per-request path is a dict
    lookup, not a ``setdefault``.
    """

    __slots__ = ("tenant_map", "stats", "_tenant_of", "_zone_pages")

    def __init__(self, tenant_map: TenantMap) -> None:
        self.tenant_map = tenant_map
        self.stats: Dict[int, TenantStats] = {
            i: TenantStats() for i in range(tenant_map.n_tenants)
        }
        self._tenant_of = tenant_map.tenant_of
        self._zone_pages = tenant_map.zone_pages

    # ------------------------------------------------------------------
    def record(self, request: IORequest, record: RequestRecord) -> None:
        """Attribute one serviced request (and its evictions) to tenants."""
        outcome = record.outcome
        stats = self.stats
        s = stats[self._tenant_of(request.lpn)]
        s.requests += 1
        pages = s.pages
        pages.hits += outcome.page_hits
        pages.total += outcome.page_hits + outcome.page_misses
        x = record.response_ms
        s.response_ms.add(x)
        s.response_quantiles.add(x)
        flushes = outcome.flushes
        if flushes:
            tenant_of = self._tenant_of
            for batch in flushes:
                touched: Dict[int, int] = {}
                for lpn in batch.lpns:
                    t = tenant_of(lpn)
                    touched[t] = touched.get(t, 0) + 1
                for t, n in touched.items():
                    victim = stats[t]
                    victim.evicted_pages += n
                    victim.evictions += 1

    # ------------------------------------------------------------------
    def register_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Export ``tenants.*`` gauges into a metrics registry.

        Follows the lazy-collector discipline (values are refreshed
        right before each snapshot).  Per-tenant series are capped at
        ``MAX_TENANT_GAUGES`` tenants; ``tenants.active_total`` is
        always exported.
        """
        if registry is None or not registry.enabled:
            return
        active = registry.gauge("tenants.active_total")
        per_tenant = []
        if self.tenant_map.n_tenants <= MAX_TENANT_GAUGES:
            for i in range(self.tenant_map.n_tenants):
                per_tenant.append(
                    (
                        self.stats[i],
                        registry.gauge(f"tenants.t{i}.requests_total"),
                        registry.gauge(f"tenants.t{i}.hit_ratio"),
                        registry.gauge(f"tenants.t{i}.evicted_pages_total"),
                    )
                )

        def collect(_now: float) -> None:
            active.set(sum(1 for s in self.stats.values() if s.requests))
            for s, req_g, hit_g, ev_g in per_tenant:
                req_g.set(s.requests)
                hit_g.set(s.hit_ratio)
                ev_g.set(s.evicted_pages)

        registry.register_collector(collect)


def tenant_rows(
    tenants: Dict[int, TenantStats],
) -> Tuple[Tuple[int, Dict[str, float]], ...]:
    """(tenant, summary) rows in tenant order — report/CSV friendly."""
    return tuple((i, tenants[i].summary()) for i in sorted(tenants))
