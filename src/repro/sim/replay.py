"""Trace replay: drive a cache policy + SSD model over a trace.

The central experimental harness.  ``replay_trace`` builds a device
sized for the trace, streams every request through the controller in
arrival order, and returns a fully-populated
:class:`~repro.sim.metrics.ReplayMetrics`.

A cache-only fast path (``replay_cache_only``) runs a policy without the
flash timing model — used by the motivation/occupancy analyses
(Figures 2, 3, 13) and by the δ sweep, where only hit behaviour matters
and the 3-4x speedup buys a denser parameter grid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cache.base import CachePolicy
from repro.cache.registry import create_policy
from repro.cache.tenant import TenantPartitioner
from repro.core.policy import ReqBlockCache
from repro.faults.injector import FaultInjector
from repro.faults.powerloss import inject_power_loss
from repro.faults.profile import FaultProfile, get_profile
from repro.obs.flight import FlightRecorder, active_recorder
from repro.obs.invariants import InvariantChecker
from repro.obs.metrics import DEFAULT_SAMPLE_INTERVAL, MetricsRegistry, Sampler
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.tracer import TeeTracer, Tracer
from repro.sim.metrics import MetricsRecorder, ReplayMetrics, fold_eviction_digest
from repro.sim.telemetry import make_emitter
from repro.sim.tenant import TENANCY_MODES, TenantAccountant
from repro.ssd.config import SSDConfig
from repro.ssd.controller import RequestRecord, SSDController
from repro.ssd.flash import FlashOutOfSpace
from repro.traces.model import PAGE_SIZE_BYTES, Trace
from repro.traces.tenants import TenantMap
from repro.utils.validation import require_positive

__all__ = [
    "ReplayConfig",
    "replay_trace",
    "replay_cache_only",
    "resolve_tracer",
    "written_footprint",
    "sized_ssd_for",
]

#: How often (in requests) the metadata footprint is sampled.
METADATA_SAMPLE_INTERVAL = 256


def written_footprint(trace: Trace) -> int:
    """Distinct LPNs written by the trace — what will occupy flash."""
    seen: set[int] = set()
    for r in trace.writes():
        seen.update(r.pages())
    return len(seen)


def sized_ssd_for(
    trace: Trace,
    base: Optional[SSDConfig] = None,
    over_provisioning: float = 0.5,
) -> SSDConfig:
    """An :class:`SSDConfig` sized so the trace's writes exercise GC.

    Keeps the paper's channel/chip geometry and timing; only the blocks
    per plane shrink to match the (possibly scaled) trace footprint.
    """
    base = base or SSDConfig()
    footprint = max(1, written_footprint(trace))
    return base.sized_for(footprint, over_provisioning)


@dataclass
class ReplayConfig:
    """Everything needed to reproduce one replay run."""

    policy: str = "lru"
    cache_bytes: int = 16 * 1024 * 1024
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Data-plane engine for the policy (``"object"`` / ``"arena"``;
    #: None consults ``REPRO_ENGINE`` and defaults to ``"object"``).
    #: See :func:`repro.cache.registry.resolve_policy` and
    #: ``docs/arena.md``.
    engine: Optional[str] = None
    ssd: Optional[SSDConfig] = None  # auto-sized for the trace when None
    over_provisioning: float = 0.5
    cache_service_ms_per_page: float = 0.01
    gc_victim_policy: str = "greedy"  # or "cost_benefit"
    #: DFTL mode: DRAM budget for the cached mapping table (None = the
    #: paper's fully-resident page-level table).
    mapping_cache_bytes: Optional[int] = None
    drain_at_end: bool = False
    log_lists: bool = True  # record Fig.-13 occupancy for Req-block
    #: Requests replayed to warm the cache before metrics start
    #: recording (the device/cache state still evolves during warmup).
    warmup_requests: int = 0
    #: Observability sink receiving every cache/FTL/GC event of the
    #: replay (see :mod:`repro.obs`); None keeps tracing disabled.
    tracer: Optional[Tracer] = None
    #: Validate simulator structure after every event (tees an
    #: :class:`~repro.obs.invariants.InvariantChecker` next to
    #: ``tracer``).  Orders of magnitude slower — tests/debugging only.
    check_invariants: bool = False
    #: Policy-structure validation rate for ``check_invariants``
    #: (1 = after every event).
    invariant_check_interval: int = 1
    #: NAND fault injection (see :mod:`repro.faults`): a profile name
    #: from ``FAULT_PROFILES``, a :class:`FaultProfile`, or None/"none"
    #: to keep the device fault-free.
    fault_profile: Optional[Any] = None
    #: Seed for the fault model's ``numpy.random.Generator``.
    fault_seed: int = 0
    #: Cut power right after servicing this request index (None = never);
    #: the replay then continues over the remounted device.
    power_loss_at: Optional[int] = None
    #: Power-loss-protection budget: dirty pages the hold-up capacitors
    #: can still flush after the rails fail.
    capacitor_pages: int = 0
    #: Metrics registry (see :mod:`repro.obs.metrics`): when set, the
    #: replay records per-request instruments, registers the device
    #: collectors and samples a time series into
    #: ``ReplayMetrics.metrics_series``.  None keeps metrics disabled at
    #: the null-registry fast path.
    metrics: Optional[MetricsRegistry] = None
    #: Snapshot cadence in requests, shared with the Figure-13 list-
    #: occupancy log (the paper's "once for every 10,000 requests").
    sample_interval: int = DEFAULT_SAMPLE_INTERVAL
    #: Profile wall-clock time by phase (replay / cache_access / flush /
    #: ftl / gc / read) into ``ReplayMetrics.phase_profile``.
    profile: bool = False
    #: Flight recorder (see :mod:`repro.obs.flight`): a bounded ring of
    #: the last-N events, teed next to ``tracer`` and dumped on abort,
    #: invariant violation, or degraded-mode entry.  None additionally
    #: consults the process-ambient recorder that supervised shard
    #: workers activate; with neither, the replay is unchanged.
    flight: Optional[FlightRecorder] = None
    #: Cache-sharing discipline across tenants (see
    #: :data:`repro.sim.tenant.TENANCY_MODES` and ``docs/tenancy.md``):
    #: ``"shared"`` runs the plain policy — with ``tenants`` unset this
    #: is exactly the legacy single-tenant data path, byte for byte —
    #: while ``"static"`` / ``"proportional"`` wrap it in a
    #: :class:`repro.cache.tenant.TenantPartitioner` (which requires
    #: ``tenants``).
    tenancy: str = "shared"
    #: Zone layout attributing LPNs to tenants (see
    #: :class:`repro.traces.tenants.TenantMap`).  When set, the replay
    #: runs a :class:`repro.sim.tenant.TenantAccountant` and fills
    #: ``ReplayMetrics.tenants``; None keeps accounting off entirely.
    tenants: Optional[TenantMap] = None
    #: Per-tenant activity weights for ``proportional`` partitioning
    #: (ignored otherwise; defaults to equal weights when needed).
    tenant_weights: Optional[Tuple[float, ...]] = None
    #: Hash the eviction sequence (every non-empty flush batch, in
    #: order) into ``ReplayMetrics.eviction_digest`` — the same sha256
    #: encoding the optimisation-equivalence goldens use.  The
    #: serial-vs-parallel test suite relies on this to prove the
    #: parallel engine behaviourally invisible; costs one branch per
    #: request when off.
    digest_evictions: bool = False

    @property
    def cache_pages(self) -> int:
        """Cache capacity in 4 KB pages (validated positive)."""
        pages = self.cache_bytes // PAGE_SIZE_BYTES
        require_positive(pages, "cache capacity in pages")
        return pages


def _build_policy(config: ReplayConfig) -> CachePolicy:
    if config.tenancy not in TENANCY_MODES:
        raise ValueError(
            f"unknown tenancy {config.tenancy!r}; "
            f"choose one of {', '.join(TENANCY_MODES)}"
        )
    if config.tenancy != "shared":
        if config.tenants is None:
            raise ValueError(
                f"tenancy={config.tenancy!r} needs a TenantMap "
                "(ReplayConfig.tenants)"
            )
        weights = config.tenant_weights
        if config.tenancy == "proportional" and weights is None:
            weights = (1.0,) * config.tenants.n_tenants
        return TenantPartitioner.build(
            config.policy,
            config.cache_pages,
            config.tenants,
            mode=config.tenancy,
            weights=weights,
            engine=config.engine,
            **config.policy_kwargs,
        )
    return create_policy(
        config.policy,
        config.cache_pages,
        engine=config.engine,
        **config.policy_kwargs,
    )


def _resolve_accountant(config: ReplayConfig) -> Optional[TenantAccountant]:
    """Per-tenant accountant when a tenant map is configured, else None
    (the legacy path: one untaken branch per request)."""
    if config.tenants is None:
        return None
    accountant = TenantAccountant(config.tenants)
    accountant.register_metrics(config.metrics)
    return accountant


def _resolve_recorder(
    config: ReplayConfig,
) -> "Tuple[Optional[MetricsRecorder], Optional[Sampler]]":
    """Per-request recorder + snapshot sampler for the configured
    registry, or ``(None, None)`` when metrics are off."""
    registry = config.metrics
    if registry is None or not registry.enabled:
        return None, None
    return MetricsRecorder(registry), Sampler(registry, config.sample_interval)


def resolve_tracer(
    config: ReplayConfig,
) -> Tuple[Optional[Tracer], Optional[InvariantChecker]]:
    """The effective tracer for a replay: the configured one, an
    invariant checker, both (teed), or None.  The caller attaches the
    returned checker to the policy/controller once they exist."""
    tracer = config.tracer
    checker: Optional[InvariantChecker] = None
    if config.check_invariants:
        checker = InvariantChecker(check_interval=config.invariant_check_interval)
        tracer = checker if tracer is None else TeeTracer(tracer, checker)
    recorder = _resolve_flight(config)
    if recorder is not None:
        tracer = recorder if tracer is None else TeeTracer(tracer, recorder)
    return tracer, checker


def _resolve_flight(config: ReplayConfig) -> Optional[FlightRecorder]:
    """The effective flight recorder: the configured one, else the
    process-ambient one a supervised worker activated, else None."""
    return config.flight if config.flight is not None else active_recorder()


def replay_trace(trace: Trace, config: ReplayConfig) -> ReplayMetrics:
    """Replay ``trace`` on the full device model; returns the metrics.

    Device-fatal errors (:class:`FlashOutOfSpace` escaping the
    controller's degraded-mode net) no longer lose the run: the replay
    stops, the metrics collected so far are finalised, and
    ``metrics.aborted_reason`` records why (the CLI maps this to a
    distinct exit code).
    """
    policy = _build_policy(config)
    tracer, checker = resolve_tracer(config)
    ssd_config = config.ssd or sized_ssd_for(
        trace, over_provisioning=config.over_provisioning
    )
    profile: Optional[FaultProfile] = get_profile(config.fault_profile)
    faults = (
        FaultInjector(profile, seed=config.fault_seed)
        if profile is not None
        else None
    )
    profiler = PhaseProfiler() if config.profile else NULL_PROFILER
    controller = SSDController(
        ssd_config,
        policy,
        cache_service_ms_per_page=config.cache_service_ms_per_page,
        gc_victim_policy=config.gc_victim_policy,
        mapping_cache_bytes=config.mapping_cache_bytes,
        tracer=tracer,
        faults=faults,
        metrics=config.metrics,
        profiler=profiler if profiler.enabled else None,
    )
    if checker is not None:
        checker.attach(policy=policy, controller=controller)
    metrics = ReplayMetrics(
        trace_name=trace.name,
        policy_name=config.policy,
        cache_pages=config.cache_pages,
    )
    recorder, sampler = _resolve_recorder(config)
    accountant = _resolve_accountant(config)
    digest = hashlib.sha256() if config.digest_evictions else None
    track_lists = config.log_lists and isinstance(policy, ReqBlockCache)
    base_flush = base_migrated = base_erases = base_programs = 0
    power_report = None
    last_index, last_time = -1, 0.0

    # Hoist per-iteration lookups out of the replay loop: the loop body
    # runs once per request, and the config fields and bound methods are
    # loop-invariant.
    warmup = config.warmup_requests
    power_loss_at = config.power_loss_at
    sample_interval = config.sample_interval
    submit = controller.submit
    record_metrics = metrics.record
    metadata_add = metrics.metadata_bytes.add
    policy_metadata_bytes = policy.metadata_bytes
    recorder_flight = _resolve_flight(config)
    telemetry = make_emitter(len(trace))
    gc_stats = controller.gc.stats
    pages_ratio = metrics.pages

    if profiler.enabled:
        profiler.start("replay")
    try:
        for i, request in enumerate(trace):
            if warmup and i == warmup:
                # Exclude warmup traffic from the flash counters.
                base_flush = controller.flushed_pages
                base_migrated = controller.gc.stats.pages_migrated
                base_erases = controller.gc.stats.blocks_erased
                base_programs = controller.total_flash_writes
            last_index = i
            last_time = request.time
            try:
                record = submit(request)
                if power_loss_at is not None and i == power_loss_at:
                    power_report = inject_power_loss(
                        controller,
                        request.time,
                        at_request=i,
                        capacitor_pages=config.capacitor_pages,
                        profile=profile,
                    )
            except FlashOutOfSpace as exc:
                metrics.aborted_reason = str(exc)
                metrics.aborted_at_request = i
                if recorder_flight is not None:
                    recorder_flight.record_dump(
                        f"replay_aborted: {exc}", metrics
                    )
                break
            if i < warmup:
                continue
            record_metrics(request, record)
            if accountant is not None:
                accountant.record(request, record)
            if digest is not None:
                fold_eviction_digest(digest, record.outcome.flushes)
            if recorder is not None:
                recorder.record(request, record)
                sampler.maybe_sample(i, request.time)
            if not i % METADATA_SAMPLE_INTERVAL:
                metadata_add(policy_metadata_bytes())
                if telemetry is not None:
                    telemetry.maybe_emit(
                        i, pages_ratio.ratio, gc_stats.blocks_erased
                    )
            if track_lists and not i % sample_interval and i > 0:
                metrics.list_log.append((i, policy.list_page_counts()))

        if config.drain_at_end and len(trace) and not metrics.aborted:
            controller.drain(trace[len(trace) - 1].time)
    except BaseException as exc:
        # A dying replay (invariant violation, injected chaos, ^C) takes
        # its last-N events with it: snapshot them at the failure site,
        # where the partial metrics are still live, and let the caller
        # (CLI or supervised worker) decide where the dump goes.
        if recorder_flight is not None:
            recorder_flight.record_dump(
                f"exception: {type(exc).__name__}: {exc}", metrics
            )
        raise
    finally:
        if profiler.enabled:
            profiler.stop()

    if sampler is not None and last_index >= 0:
        sampler.finalize(last_index, last_time)
        metrics.metrics_series = sampler.series
    if profiler.enabled:
        metrics.phase_profile = profiler.as_dict()
    if digest is not None:
        metrics.eviction_digest = digest.hexdigest()
    if accountant is not None:
        metrics.tenants = accountant.stats

    metrics.host_flush_pages = controller.flushed_pages - base_flush
    metrics.gc_migrated_pages = controller.gc.stats.pages_migrated - base_migrated
    metrics.gc_erases = controller.gc.stats.blocks_erased - base_erases
    metrics.flash_total_writes = controller.total_flash_writes - base_programs
    if len(trace):
        horizon = max(
            trace[len(trace) - 1].time,
            max(controller.resources.plane_free, default=0.0),
        )
        plane_u = controller.resources.utilisation(horizon)
        bus_u = controller.resources.bus_utilisation(horizon)
        if plane_u:
            metrics.mean_plane_utilisation = sum(plane_u) / len(plane_u)
            metrics.max_plane_utilisation = max(plane_u)
        if bus_u:
            metrics.mean_bus_utilisation = sum(bus_u) / len(bus_u)
    if (
        faults is not None
        or power_report is not None
        or controller.degraded.active
        or metrics.aborted
    ):
        durability = controller.durability_report()
        durability.power_loss = power_report
        metrics.durability = durability
    if (
        recorder_flight is not None
        and recorder_flight.degraded_reason is not None
    ):
        # DegradedMode entry is dump-worthy even when the replay ran to
        # completion (the device limped home read-only); first recorded
        # dump wins, so an earlier abort snapshot is never overwritten.
        recorder_flight.record_dump(
            f"degraded_mode_entered: {recorder_flight.degraded_reason}",
            metrics,
        )
    if checker is not None:
        checker.close()
    return metrics


def replay_cache_only(trace: Trace, config: ReplayConfig) -> ReplayMetrics:
    """Replay through the cache policy alone (no flash timing/GC).

    Response-time fields stay zero (every request is recorded with
    ``response_ms=0.0``); hit ratios, eviction histogram, metadata
    samples and list logs are identical to a full replay because the
    policy never observes the flash backend —
    ``tests/sim/test_replay.py::TestFastPathEquivalence`` pins this.
    """
    policy = _build_policy(config)
    tracer, checker = resolve_tracer(config)
    if tracer is not None:
        policy.set_tracer(tracer)
    if checker is not None:
        checker.attach(policy=policy)
    if config.metrics is not None:
        policy.set_metrics(config.metrics)
    profiler = PhaseProfiler() if config.profile else NULL_PROFILER
    metrics = ReplayMetrics(
        trace_name=trace.name,
        policy_name=config.policy,
        cache_pages=config.cache_pages,
    )
    recorder, sampler = _resolve_recorder(config)
    accountant = _resolve_accountant(config)
    digest = hashlib.sha256() if config.digest_evictions else None
    track_lists = config.log_lists and isinstance(policy, ReqBlockCache)
    flushed = 0
    last_index, last_time = -1, 0.0

    # Loop-invariant hoisting, as in ``replay_trace``.
    warmup = config.warmup_requests
    sample_interval = config.sample_interval
    access = policy.access
    record_metrics = metrics.record
    metadata_add = metrics.metadata_bytes.add
    policy_metadata_bytes = policy.metadata_bytes
    profiled = profiler.enabled
    recorder_flight = _resolve_flight(config)
    telemetry = make_emitter(len(trace), phase="cache_only")
    pages_ratio = metrics.pages

    if profiled:
        profiler.start("replay")
    try:
        for i, request in enumerate(trace):
            last_index = i
            last_time = request.time
            if not profiled:
                outcome = access(request)
            else:
                profiler.start("cache_access")
                try:
                    outcome = access(request)
                finally:
                    profiler.stop()
            if i < warmup:
                continue
            record = RequestRecord(response_ms=0.0, outcome=outcome)
            record_metrics(request, record)
            if accountant is not None:
                accountant.record(request, record)
            if digest is not None:
                fold_eviction_digest(digest, outcome.flushes)
            if recorder is not None:
                recorder.record(request, record)
                sampler.maybe_sample(i, request.time)
            flushed += outcome.flushed_pages
            if not i % METADATA_SAMPLE_INTERVAL:
                metadata_add(policy_metadata_bytes())
                if telemetry is not None:
                    # Cache-only replays have no GC, hence erases=0.
                    telemetry.maybe_emit(i, pages_ratio.ratio, 0)
            if track_lists and not i % sample_interval and i > 0:
                metrics.list_log.append((i, policy.list_page_counts()))
    except BaseException as exc:
        if recorder_flight is not None:
            recorder_flight.record_dump(
                f"exception: {type(exc).__name__}: {exc}", metrics
            )
        raise
    finally:
        if profiler.enabled:
            profiler.stop()

    if sampler is not None and last_index >= 0:
        sampler.finalize(last_index, last_time)
        metrics.metrics_series = sampler.series
    if profiler.enabled:
        metrics.phase_profile = profiler.as_dict()
    if digest is not None:
        metrics.eviction_digest = digest.hexdigest()
    if accountant is not None:
        metrics.tenants = accountant.stats
    metrics.host_flush_pages = flushed
    metrics.flash_total_writes = flushed
    if checker is not None:
        checker.close()
    return metrics
