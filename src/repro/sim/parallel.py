"""Sharded parallel experiment engine.

Every paper figure multiplies (policy x trace x config) cells, and each
cell is an independent deterministic replay — embarrassingly parallel
work that previously only the sweep module fanned out, with a
hard-coded ``fork`` start method and no error reporting.  This module
is the general engine underneath all of it:

* :func:`run_shards` — run a picklable worker over a payload list on a
  process pool, returning results **in payload order** regardless of
  worker completion order.  ``jobs=1`` bypasses the pool entirely and
  runs the exact legacy serial path.  Worker failures surface as a
  :class:`ShardError` carrying the shard index and the worker's
  traceback (never a hang); a ``KeyboardInterrupt`` — in the parent or
  in a worker — tears the pool down and re-raises.
* :func:`plan_segments` / :func:`shard_trace` /
  :func:`replay_sharded` — *trace-segment* sharding for one huge
  trace: contiguous, balanced request slices, each replayed on its own
  cold cache/device in a worker, reduced with
  :func:`repro.sim.metrics.merge_metrics` in segment order.
* :func:`derive_shard_seed` — per-shard RNG seed derivation
  (``numpy.random.SeedSequence`` spawn keys), following the repo's
  explicit-seed convention (``repro.utils.rng.resolve_rng``): no
  module-level RNG, identical seeds give identical shard streams, and
  distinct shards never alias each other's streams.

Determinism contract (pinned by ``tests/sim/test_parallel_*``): for a
fixed payload list, the result list — and therefore any merged metrics
and chained eviction digests — is byte-identical whatever ``jobs``
count, start method, or worker completion order produced it.  Cell
results are bit-equal to a single-process replay of the same cell;
segment-sharded results are bit-equal across worker counts (but *not*
to an unsharded replay, since each segment starts cold — see
``docs/parallel.md``).
"""

from __future__ import annotations

import os
import signal
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, replace
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.metrics import ReplayMetrics, merge_metrics
from repro.sim.progress import EtaTracker, ProgressCallback
from repro.sim.replay import ReplayConfig, replay_cache_only, replay_trace
from repro.traces.model import Trace

__all__ = [
    "ShardError",
    "ShardSpec",
    "ShardPlan",
    "resolve_start_method",
    "resolve_jobs",
    "derive_shard_seed",
    "run_shards",
    "plan_segments",
    "shard_trace",
    "replay_sharded",
]

#: Environment override for the default worker count (``--jobs`` /
#: ``processes=`` arguments win over it).
JOBS_ENV = "REPRO_JOBS"
#: Environment override for the pool start method.
START_METHOD_ENV = "REPRO_START_METHOD"


class ShardError(RuntimeError):
    """A worker failed while executing one shard.

    Raised in the parent with the shard's index, a repr of its payload
    and the worker-side traceback, after the pool has been torn down —
    a failing shard never hangs the run or loses its diagnosis to a
    pickling-unfriendly exception type.
    """

    def __init__(self, index: int, payload: Any, detail: str) -> None:
        self.shard_index = index
        self.payload = payload
        self.detail = detail
        shown = repr(payload)
        if len(shown) > 200:
            shown = shown[:200] + "..."
        super().__init__(
            f"shard {index} ({shown}) failed in worker:\n{detail}"
        )

    def __reduce__(self) -> Tuple[Any, Tuple[Any, ...]]:
        # RuntimeError's default reduce replays __init__ with the
        # formatted message as the only argument, which crashes the
        # three-argument signature above; rebuild from the real fields
        # so the error crosses a spawn boundary with its traceback.
        return (ShardError, (self.shard_index, self.payload, self.detail))


def resolve_start_method(preferred: Optional[str] = None) -> str:
    """The multiprocessing start method the engine should use.

    ``preferred`` (or the ``REPRO_START_METHOD`` environment variable)
    wins when it is available on the platform; otherwise ``fork`` is
    chosen where the OS supports it (workers share the already-imported
    package and the parent's memoised traces for free) with ``spawn``
    as the portable fallback (macOS default since 3.8, Windows always).
    """
    methods = get_all_start_methods()
    if preferred is None:
        preferred = os.environ.get(START_METHOD_ENV) or None
    if preferred is not None:
        if preferred not in methods:
            raise ValueError(
                f"start method {preferred!r} unavailable on this platform "
                f"(have: {', '.join(methods)})"
            )
        return preferred
    return "fork" if "fork" in methods else "spawn"


def resolve_jobs(jobs: Optional[int], n_tasks: int) -> int:
    """Effective worker count: explicit > ``REPRO_JOBS`` > CPU count,
    clamped to the task count and floored at 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, n_tasks or 1))


def derive_shard_seed(seed: int, index: int) -> int:
    """Deterministic per-shard seed from a base seed and a shard index.

    Uses ``numpy.random.SeedSequence`` spawn keys — the same mechanism
    ``default_rng`` seeds from — so shard streams are statistically
    independent of each other and of the base stream, yet fully
    determined by ``(seed, index)`` on every platform.  Shard workers
    feed the derived value through the normal ``seed=`` parameters
    (``resolve_rng`` convention); no generator state ever crosses the
    process boundary.
    """
    ss = np.random.SeedSequence(entropy=int(seed), spawn_key=(int(index),))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


@contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Convert SIGTERM to KeyboardInterrupt for the duration of a block.

    A pool parent killed by plain SIGTERM (batch scheduler, ``kill``)
    would otherwise die without running its ``except`` / ``finally``
    teardown, orphaning live workers.  Routing the signal through
    ``KeyboardInterrupt`` reuses the existing interrupt path:
    terminate, join, re-raise.  Signal handlers can only be installed
    from the main thread; elsewhere this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(_signum: int, _frame: Any) -> None:
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# ----------------------------------------------------------------------
# Generic pool engine
# ----------------------------------------------------------------------

# Worker -> parent shard status markers.  Compared by value: they cross
# the process boundary by pickling, which does not preserve identity.
_OK = "ok"
_FAILED = "failed"
_INTERRUPTED = "interrupted"


def _run_shard(task: Tuple[Callable[[Any], Any], int, Any]) -> Tuple[int, str, Any]:
    """Pool-side wrapper: never lets an exception escape unpickled.

    Worker exceptions are flattened to their traceback text so the
    parent can always reconstruct a report, even for exception types
    that do not survive pickling; ``KeyboardInterrupt`` is forwarded as
    a status so the parent can tear the pool down and re-raise it.
    """
    worker, index, payload = task
    try:
        return index, _OK, worker(payload)
    except KeyboardInterrupt:
        return index, _INTERRUPTED, None
    except BaseException:
        return index, _FAILED, traceback.format_exc()


def run_shards(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Any]:
    """Run ``worker`` over ``payloads``; results in payload order.

    ``worker`` and every payload must be picklable (a module-level
    function and by-value job specs, as in ``repro.sim.sweep``).  With
    ``jobs=1`` the pool is skipped entirely: payloads run inline, in
    order, with exceptions propagating raw — exactly the legacy serial
    path.  With ``jobs>1`` results are collected as workers finish
    (``imap_unordered``) but slotted back by index, so callers observe
    completion-order-independent output; a failing shard raises
    :class:`ShardError` and a ``KeyboardInterrupt`` anywhere (including
    a SIGTERM to the parent) terminates *and joins* the pool before
    re-raising — no orphaned workers on any exit path.

    ``progress`` receives one ``"done"``
    :class:`~repro.sim.progress.ProgressEvent` per completed shard (in
    completion order), on the inline path too.
    """
    payloads = list(payloads)
    n = len(payloads)
    if n == 0:
        return []
    jobs = resolve_jobs(jobs, n)
    tracker = EtaTracker(n) if progress is not None else None

    def _mark(index: int) -> None:
        if tracker is not None:
            tracker.mark_done()
            progress(tracker.event("done", index, 1))

    if jobs == 1:
        results = []
        for i, payload in enumerate(payloads):
            results.append(worker(payload))
            _mark(i)
        return results
    ctx = get_context(resolve_start_method(start_method))
    tasks = [(worker, i, payload) for i, payload in enumerate(payloads)]
    results = [None] * n
    pool = ctx.Pool(jobs)
    try:
        with _sigterm_as_interrupt():
            for index, status, value in pool.imap_unordered(_run_shard, tasks):
                if status == _FAILED:
                    raise ShardError(index, payloads[index], value)
                if status == _INTERRUPTED:
                    raise KeyboardInterrupt
                results[index] = value
                _mark(index)
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    else:
        pool.close()
        pool.join()
    return results


# ----------------------------------------------------------------------
# Trace-segment sharding
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a trace, with its derived seed."""

    index: int
    start: int
    stop: int
    #: Per-shard fault-model seed (see :func:`derive_shard_seed`).
    seed: int

    @property
    def n_requests(self) -> int:
        """Requests covered by this shard."""
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic decomposition of one replay into shards.

    Pure data — the plan depends only on (trace length, shard count,
    base seed), never on worker count or scheduling, which is what lets
    two runs at different ``jobs`` merge to byte-identical results.
    """

    n_requests: int
    base_seed: int
    shards: Tuple[ShardSpec, ...]

    def __len__(self) -> int:
        return len(self.shards)


def plan_segments(
    n_requests: int, n_shards: int, base_seed: int = 0
) -> ShardPlan:
    """Balanced contiguous segmentation of ``n_requests`` requests.

    Shard sizes differ by at most one (the first ``n_requests mod
    n_shards`` shards take the extra request); the shard count is
    clamped to the request count so no shard is ever empty.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_requests == 0:
        return ShardPlan(n_requests=0, base_seed=base_seed, shards=())
    n_shards = min(n_shards, n_requests)
    base, extra = divmod(n_requests, n_shards)
    shards: List[ShardSpec] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(
            ShardSpec(
                index=i,
                start=start,
                stop=start + size,
                seed=derive_shard_seed(base_seed, i),
            )
        )
        start += size
    return ShardPlan(n_requests=n_requests, base_seed=base_seed, shards=tuple(shards))


def shard_trace(trace: Trace, n_shards: int, base_seed: int = 0) -> List[Trace]:
    """Split a trace into the sub-traces of :func:`plan_segments`."""
    plan = plan_segments(len(trace), n_shards, base_seed)
    return [
        Trace(f"{trace.name}[{s.start}:{s.stop}]", trace.requests[s.start : s.stop])
        for s in plan.shards
    ]


#: ReplayConfig fields that cannot cross the process boundary or whose
#: whole-replay semantics do not decompose into independent segments.
_UNSHARDABLE = (
    ("tracer", "event tracers hold open file handles"),
    ("check_invariants", "invariant checkers attach to one live policy"),
    ("metrics", "a MetricsRegistry binds collectors to one process"),
    ("profile", "phase profiles measure one process's wall clock"),
    ("power_loss_at", "the request index is global to one device"),
    ("warmup_requests", "warmup is a prefix of the whole replay"),
    ("drain_at_end", "draining each segment changes the flush stream"),
)


def _check_shardable(config: ReplayConfig) -> None:
    for attr, why in _UNSHARDABLE:
        value = getattr(config, attr)
        bad = value is not None if attr == "power_loss_at" else bool(value)
        if bad:
            raise ValueError(
                f"segment-sharded replay does not support "
                f"ReplayConfig.{attr} ({why}); run unsharded or via the "
                f"cell-level sweep engine instead"
            )


def _replay_segment(
    payload: Tuple[str, Tuple, ReplayConfig, ShardSpec, bool],
) -> ReplayMetrics:
    """Worker: replay one trace segment on a fresh cache/device."""
    name, requests, config, spec, cache_only = payload
    trace = Trace(name, requests)
    shard_config = replace(config, fault_seed=spec.seed)
    runner = replay_cache_only if cache_only else replay_trace
    return runner(trace, shard_config)


def replay_sharded(
    trace: Trace,
    config: ReplayConfig,
    n_shards: Optional[int] = None,
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
    cache_only: bool = False,
    supervision: Optional[Any] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    metrics: Optional[Any] = None,
    tracer: Optional[Any] = None,
    flight: bool = False,
    telemetry: Optional[Callable[[Any], None]] = None,
    flightdumps: Optional[List[Any]] = None,
) -> ReplayMetrics:
    """Replay one trace as independent segments and merge the metrics.

    Each shard replays its slice on its own cold cache and (for full
    replays) its own device sized for the slice, with its fault seed
    derived from ``(config.fault_seed, shard index)``; the parent
    reduces the shard metrics in segment order with
    :meth:`ReplayMetrics.merge`.  The merged result is byte-identical
    for any ``jobs`` value because the plan depends only on
    ``n_shards`` — but it is an *approximation* of the unsharded
    replay: caches restart cold at segment boundaries, so hit ratios
    dip slightly (quantified in ``docs/parallel.md``).  Use the
    cell-level engine when bit-equality with a serial replay is
    required; use this when one huge trace dominates wall-clock time.

    ``n_shards`` defaults to the effective job count, so the default
    decomposition exactly fills the pool.

    ``supervision`` / ``checkpoint_path`` / ``resume`` route the
    fan-out through :func:`repro.sim.supervisor.run_shards_supervised`
    (retry, watchdog timeouts, crash-safe checkpointing, salvage).  A
    salvaged run merges the surviving segments only and reports the
    damage on the merged metrics' :class:`~repro.faults.report
    .DurabilityReport` (``shards_failed``, ``shard_coverage``); a clean
    supervised run — including one resumed from a journal — merges
    byte-identically to an unsupervised one.

    ``flight`` activates a per-worker flight recorder and ``telemetry``
    a live progress-frame callback; both require the per-process
    supervisor pipes, so setting either routes the fan-out through the
    supervised engine even without an explicit ``supervision`` policy.
    Dumps shipped back by dying/aborted shards are appended (in shard
    order) to the caller-supplied ``flightdumps`` list.
    """
    _check_shardable(config)
    if n_shards is None:
        n_shards = resolve_jobs(jobs, len(trace))
    plan = plan_segments(len(trace), n_shards, config.fault_seed)
    payloads = [
        (
            f"{trace.name}[{s.start}:{s.stop}]",
            tuple(trace.requests[s.start : s.stop]),
            config,
            s,
            cache_only,
        )
        for s in plan.shards
    ]
    supervised = (
        supervision is not None
        or checkpoint_path is not None
        or resume
        or flight
        or telemetry is not None
    )
    outcome = None
    if supervised:
        from repro.sim.supervisor import run_shards_supervised

        outcome = run_shards_supervised(
            _replay_segment,
            payloads,
            jobs=jobs,
            start_method=start_method,
            supervision=supervision,
            checkpoint_path=checkpoint_path,
            resume=resume,
            progress=progress,
            metrics=metrics,
            tracer=tracer,
            flight=flight,
            telemetry=telemetry,
        )
        parts = [part for part in outcome.results if part is not None]
        if flightdumps is not None:
            flightdumps.extend(
                dump for _, dump in sorted(outcome.flightdumps.items())
            )
    else:
        parts = run_shards(
            _replay_segment,
            payloads,
            jobs=jobs,
            start_method=start_method,
            progress=progress,
        )
    merged = merge_metrics(parts)
    merged.trace_name = trace.name
    merged.policy_name = config.policy
    if len(trace):
        merged.cache_pages = config.cache_pages
    if outcome is not None and (
        outcome.failures or outcome.retries or outcome.timeouts
    ):
        # Only a damaged or bumpy run earns durability shard fields —
        # a clean resumed run must merge byte-identically to a plain
        # one, summary() included.
        from repro.faults.report import DurabilityReport

        durability = merged.durability or DurabilityReport()
        merged.durability = replace(
            durability,
            shards_planned=outcome.n_shards,
            shards_failed=outcome.failed_indices,
            shard_retries=outcome.retries,
            shard_timeouts=outcome.timeouts,
        )
    return merged
