"""Cross-shard live telemetry: compact progress frames from workers.

The ``--progress`` channel (:mod:`repro.sim.progress`) only reports
shard *lifecycle* — start, retry, done — so a four-hour sharded replay
shows nothing between launches.  This module adds the in-flight view:
replay loops inside shard workers periodically push a
:class:`TelemetryFrame` (requests done, req/s, hit rate, GC count,
phase) back over the supervisor pipe, and the parent renders the frames
as a live per-shard heartbeat log (:class:`LiveTelemetry`).

Worker-side plumbing mirrors the flight recorder's ambient pattern
(:mod:`repro.obs.flight`): the supervised entry point installs a
process-global frame sink (:func:`set_frame_sink`) and the replay
drivers ask :func:`make_emitter` for an emitter at loop start.  With no
sink installed — every unsupervised run — ``make_emitter`` returns None
and the loops skip telemetry entirely; with one installed, the check
piggybacks on the existing metadata-sampling branch (every 256
requests) and the wall-clock rate limit keeps actual sends to about one
per ``interval_s``, so frames never become hot-path traffic.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TextIO

__all__ = [
    "TelemetryFrame",
    "FrameEmitter",
    "LiveTelemetry",
    "set_frame_sink",
    "clear_frame_sink",
    "make_emitter",
    "DEFAULT_FRAME_INTERVAL_S",
]

#: Minimum wall-clock seconds between frames from one worker.
DEFAULT_FRAME_INTERVAL_S = 1.0


@dataclass(frozen=True)
class TelemetryFrame:
    """One worker progress reading (picklable; crosses the pipe)."""

    #: Shard index within the fan-out (0 for unsharded runs).
    shard: int
    #: Replay phase the worker is in (``"replay"`` / ``"cache_only"``).
    phase: str
    #: Requests replayed so far in this shard.
    requests: int
    #: Requests this shard will replay in total (0 = unknown).
    total_requests: int
    #: Mean replay throughput since the shard started.
    req_per_s: float
    #: Page hit ratio accumulated so far.
    hit_ratio: float
    #: GC block erases so far (0 on cache-only replays).
    gc_erases: int
    #: Wall-clock seconds since the shard's replay started.
    elapsed_s: float

    @property
    def fraction(self) -> float:
        """Completed fraction (0.0 when the total is unknown)."""
        if self.total_requests <= 0:
            return 0.0
        return min(1.0, self.requests / self.total_requests)


FrameSink = Callable[[TelemetryFrame], None]


class FrameEmitter:
    """Worker-side frame builder with a wall-clock rate limit.

    ``maybe_emit`` is called from the replay loop's sampled branch; it
    returns immediately unless ``interval_s`` has elapsed since the last
    frame, so the cost per sampled request is one clock read and a
    compare.  Send failures are swallowed: telemetry must never kill a
    shard that is otherwise computing fine (e.g. the parent went away).
    """

    __slots__ = (
        "sink",
        "shard",
        "phase",
        "total_requests",
        "interval_s",
        "_t0",
        "_last",
    )

    def __init__(
        self,
        sink: FrameSink,
        shard: int,
        total_requests: int,
        phase: str = "replay",
        interval_s: float = DEFAULT_FRAME_INTERVAL_S,
    ) -> None:
        self.sink = sink
        self.shard = shard
        self.phase = phase
        self.total_requests = total_requests
        self.interval_s = interval_s
        self._t0 = time.monotonic()
        self._last = self._t0

    def maybe_emit(self, index: int, hit_ratio: float, gc_erases: int) -> bool:
        """Ship a frame if the rate limit allows; returns whether sent."""
        now = time.monotonic()
        if now - self._last < self.interval_s:
            return False
        self._last = now
        elapsed = now - self._t0
        requests = index + 1
        frame = TelemetryFrame(
            shard=self.shard,
            phase=self.phase,
            requests=requests,
            total_requests=self.total_requests,
            req_per_s=requests / elapsed if elapsed > 0 else 0.0,
            hit_ratio=hit_ratio,
            gc_erases=gc_erases,
            elapsed_s=elapsed,
        )
        try:
            self.sink(frame)
        except Exception:
            return False
        return True


# ----------------------------------------------------------------------
# Ambient sink (installed per worker process by the supervisor)
# ----------------------------------------------------------------------

_SINK: Optional[FrameSink] = None
_SINK_SHARD = 0
_SINK_INTERVAL_S = DEFAULT_FRAME_INTERVAL_S


def set_frame_sink(
    sink: FrameSink,
    shard: int = 0,
    interval_s: float = DEFAULT_FRAME_INTERVAL_S,
) -> None:
    """Install this process's frame sink (one per worker process)."""
    global _SINK, _SINK_SHARD, _SINK_INTERVAL_S
    _SINK = sink
    _SINK_SHARD = shard
    _SINK_INTERVAL_S = interval_s


def clear_frame_sink() -> None:
    """Remove the frame sink (idempotent)."""
    global _SINK
    _SINK = None


def make_emitter(
    total_requests: int, phase: str = "replay"
) -> Optional[FrameEmitter]:
    """An emitter bound to the ambient sink, or None when telemetry is
    off (the default everywhere outside telemetry-enabled workers)."""
    if _SINK is None:
        return None
    return FrameEmitter(
        _SINK,
        shard=_SINK_SHARD,
        total_requests=total_requests,
        phase=phase,
        interval_s=_SINK_INTERVAL_S,
    )


# ----------------------------------------------------------------------
# Parent-side aggregation
# ----------------------------------------------------------------------


class LiveTelemetry:
    """Aggregates worker frames into a per-shard heartbeat log.

    Keeps each shard's latest frame and, at most once per
    ``heartbeat_s``, prints one line per active shard to ``stream``
    (stderr by default, like ``--progress``).  The printed format is
    stable enough to grep but not a parsing contract.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        heartbeat_s: float = 2.0,
    ) -> None:
        self.stream = stream
        self.heartbeat_s = heartbeat_s
        self.latest: Dict[int, TelemetryFrame] = {}
        self.frames_seen = 0
        self._last_print = 0.0

    def __call__(self, frame: TelemetryFrame) -> None:
        self.latest[frame.shard] = frame
        self.frames_seen += 1
        now = time.monotonic()
        if now - self._last_print >= self.heartbeat_s:
            self._last_print = now
            self.render()

    def render(self) -> None:
        """Print the current per-shard table (one line per shard)."""
        out = self.stream if self.stream is not None else sys.stderr
        for shard in sorted(self.latest):
            print(self.format_frame(self.latest[shard]), file=out)

    @staticmethod
    def format_frame(f: TelemetryFrame) -> str:
        done = (
            f"{f.requests}/{f.total_requests} reqs ({f.fraction * 100.0:.0f}%)"
            if f.total_requests
            else f"{f.requests} reqs"
        )
        return (
            f"[live] shard {f.shard} {f.phase:<10} {done} "
            f"{f.req_per_s:,.0f} req/s hit {f.hit_ratio:.3f} "
            f"gc {f.gc_erases} elapsed {f.elapsed_s:.1f}s"
        )
