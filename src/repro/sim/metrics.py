"""Replay metric aggregation.

One :class:`ReplayMetrics` instance accumulates everything the paper's
figures report, in O(1) memory per request:

* page-granularity hit ratio, split by read/write (Fig. 9);
* per-request response time statistics (Fig. 8);
* eviction batch-size histogram (Fig. 10);
* flash write counts, host flushes and GC traffic separately (Fig. 11);
* replacement-metadata footprint samples (Fig. 12);
* Req-block's per-list page counts, logged every 10k requests (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.base import AccessOutcome
from repro.faults.report import DurabilityReport
from repro.ssd.controller import RequestRecord
from repro.traces.model import IORequest
from repro.utils.stats import Histogram, RatioCounter, ReservoirQuantiles, RunningStats

__all__ = ["ReplayMetrics"]

#: Fig. 13: "logged once for every 10,000 requests".
LIST_LOG_INTERVAL = 10_000


@dataclass
class ReplayMetrics:
    """Aggregated results of replaying one trace through one policy."""

    trace_name: str = ""
    policy_name: str = ""
    cache_pages: int = 0

    # Cache behaviour.
    pages: RatioCounter = field(default_factory=RatioCounter)
    read_pages: RatioCounter = field(default_factory=RatioCounter)
    write_pages: RatioCounter = field(default_factory=RatioCounter)

    # Timing.
    response_ms: RunningStats = field(default_factory=RunningStats)
    read_response_ms: RunningStats = field(default_factory=RunningStats)
    write_response_ms: RunningStats = field(default_factory=RunningStats)
    response_quantiles: ReservoirQuantiles = field(
        default_factory=ReservoirQuantiles
    )

    # Evictions.
    eviction_hist: Histogram = field(default_factory=Histogram)

    # Flash traffic (filled in at the end of replay).
    host_flush_pages: int = 0
    gc_migrated_pages: int = 0
    gc_erases: int = 0
    flash_total_writes: int = 0

    # Metadata footprint (sampled).
    metadata_bytes: RunningStats = field(default_factory=RunningStats)

    # Device utilisation over the replay horizon (full replays only).
    mean_plane_utilisation: float = 0.0
    max_plane_utilisation: float = 0.0
    mean_bus_utilisation: float = 0.0

    # Req-block list occupancy log: (request index, {"IRL": n, ...}).
    list_log: List[Tuple[int, Dict[str, int]]] = field(default_factory=list)

    n_requests: int = 0

    # Robustness (see repro.faults).  ``aborted_reason`` is set when a
    # device-fatal error cut the replay short — the metrics accumulated
    # up to that point are still valid partial results.  ``durability``
    # is populated whenever fault injection, a power loss, or degraded
    # mode touched the run.
    aborted_reason: str = ""
    aborted_at_request: int = -1
    durability: Optional[DurabilityReport] = None

    @property
    def aborted(self) -> bool:
        """Whether the replay ended early on a device-fatal error."""
        return bool(self.aborted_reason)

    # ------------------------------------------------------------------
    def record(self, request: IORequest, record: RequestRecord) -> None:
        """Fold one serviced request into the aggregates."""
        outcome = record.outcome
        self.n_requests += 1
        self.pages.hits += outcome.page_hits
        self.pages.total += outcome.total_pages
        if request.is_read:
            self.read_pages.hits += outcome.page_hits
            self.read_pages.total += outcome.total_pages
            self.read_response_ms.add(record.response_ms)
        else:
            self.write_pages.hits += outcome.page_hits
            self.write_pages.total += outcome.total_pages
            self.write_response_ms.add(record.response_ms)
        self.response_ms.add(record.response_ms)
        self.response_quantiles.add(record.response_ms)
        for batch in outcome.flushes:
            if batch.lpns:
                self.eviction_hist.add(len(batch.lpns))

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """Fraction of accessed pages absorbed by the cache (Fig. 9)."""
        return self.pages.ratio

    @property
    def mean_response_ms(self) -> float:
        """Mean per-request I/O response time (Fig. 8)."""
        return self.response_ms.mean

    @property
    def total_response_ms(self) -> float:
        """Summed response time — the figure's 'overall I/O response time'."""
        return self.response_ms.total

    def response_percentile(self, q: float) -> float:
        """Estimated response-time quantile (e.g. q=0.99 for p99)."""
        return self.response_quantiles.quantile(q)

    @property
    def eviction_count(self) -> int:
        """Total eviction operations observed."""
        return int(round(sum(w for _k, w in self.eviction_hist.items())))

    @property
    def mean_eviction_pages(self) -> float:
        """Average pages per eviction operation (Fig. 10)."""
        return self.eviction_hist.mean()

    @property
    def mean_metadata_kb(self) -> float:
        """Average replacement-metadata footprint in KB (Fig. 12)."""
        return self.metadata_bytes.mean / 1024.0

    @property
    def max_metadata_kb(self) -> float:
        """Peak sampled metadata footprint in KB."""
        return (self.metadata_bytes.max / 1024.0) if self.metadata_bytes.count else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (report/CSV friendly)."""
        return {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "cache_pages": self.cache_pages,
            "requests": self.n_requests,
            "hit_ratio": self.hit_ratio,
            "read_hit_ratio": self.read_pages.ratio,
            "write_hit_ratio": self.write_pages.ratio,
            "mean_response_ms": self.mean_response_ms,
            "p99_response_ms": self.response_percentile(0.99),
            "total_response_ms": self.total_response_ms,
            "evictions": self.eviction_count,
            "mean_eviction_pages": self.mean_eviction_pages,
            "host_flush_pages": self.host_flush_pages,
            "gc_migrated_pages": self.gc_migrated_pages,
            "flash_total_writes": self.flash_total_writes,
            "mean_metadata_kb": self.mean_metadata_kb,
            "mean_plane_utilisation": self.mean_plane_utilisation,
        }
