"""Replay metric aggregation.

One :class:`ReplayMetrics` instance accumulates everything the paper's
figures report, in O(1) memory per request:

* page-granularity hit ratio, split by read/write (Fig. 9);
* per-request response time statistics (Fig. 8);
* eviction batch-size histogram (Fig. 10);
* flash write counts, host flushes and GC traffic separately (Fig. 11);
* replacement-metadata footprint samples (Fig. 12);
* Req-block's per-list page counts, logged every 10k requests (Fig. 13).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.base import AccessOutcome, FlushBatch
from repro.faults.report import DurabilityReport
from repro.obs.metrics import DEFAULT_SAMPLE_INTERVAL, MetricsRegistry
from repro.sim.tenant import TenantStats
from repro.ssd.controller import RequestRecord
from repro.traces.model import IORequest, OpType
from repro.utils.stats import Histogram, RatioCounter, ReservoirQuantiles, RunningStats

__all__ = [
    "MetricsRecorder",
    "ReplayMetrics",
    "fold_eviction_digest",
    "merge_metrics",
]

#: Fig. 13: "logged once for every 10,000 requests".  Shared with the
#: metrics time-series cadence (``repro.obs.metrics``) so the list log
#: and the telemetry snapshots land on the same request indices.
LIST_LOG_INTERVAL = DEFAULT_SAMPLE_INTERVAL


def fold_eviction_digest(hasher: "hashlib._Hash", flushes: Iterable[FlushBatch]) -> None:
    """Fold one access's flush batches into an eviction-sequence hash.

    The encoding — ``repr((tuple(lpns), pin_key))`` per non-empty batch,
    in emission order — is the same one the optimisation-equivalence
    suite (``tests/sim/test_optimized_equivalence.py``) pins against the
    seed implementations, so replay digests are directly comparable to
    those goldens.  Order-sensitive by construction: any reordered,
    dropped, or recomposed batch changes the digest.
    """
    for batch in flushes:
        lpns = batch.lpns
        if lpns:
            hasher.update(repr((tuple(lpns), batch.pin_key)).encode())


class MetricsRecorder:
    """Per-request instrument recording for the replay loops.

    Binds the host/cache instruments once at replay start and folds each
    serviced request's :class:`~repro.cache.base.AccessOutcome` in — the
    cache policies themselves never touch per-page instruments, so their
    hot loops stay identical with metrics on or off (only rare paths
    like Req-block splits carry their own counters).

    The scalar counts accumulate in plain attributes and are pushed into
    the registry's counters by a collector right before each snapshot
    (same lazy discipline as the device gauges); only the distribution
    instruments — the response-time/eviction-batch histograms and the
    request rate — are fed per event, because they cannot be
    reconstructed from totals.  This keeps the per-request cost to a few
    integer adds (~5% of fast-path replay time, see the benchmark
    baseline).
    """

    __slots__ = (
        "registry",
        "n_requests",
        "n_reads",
        "n_writes",
        "page_hits",
        "page_misses",
        "inserted_pages",
        "read_miss_pages",
        "evictions",
        "evicted_pages",
        "_eviction_batch",
        "_response",
        "_rate",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.n_requests = 0
        self.n_reads = 0
        self.n_writes = 0
        self.page_hits = 0
        self.page_misses = 0
        self.inserted_pages = 0
        self.read_miss_pages = 0
        self.evictions = 0
        self.evicted_pages = 0
        self._eviction_batch = registry.histogram("cache.eviction_batch_pages")
        self._response = registry.histogram("host.response_ms")
        self._rate = registry.rate("host.request_rate", window=1000.0)

        requests = registry.counter("host.requests_total")
        reads = registry.counter("host.read_requests_total")
        writes = registry.counter("host.write_requests_total")
        hits = registry.counter("cache.page_hits_total")
        misses = registry.counter("cache.page_misses_total")
        inserted = registry.counter("cache.inserted_pages_total")
        read_miss = registry.counter("cache.read_miss_pages_total")
        evictions = registry.counter("cache.evictions_total")
        evicted = registry.counter("cache.evicted_pages_total")

        def flush_counts(_now: float) -> None:
            requests.value = self.n_requests
            reads.value = self.n_reads
            writes.value = self.n_writes
            hits.value = self.page_hits
            misses.value = self.page_misses
            inserted.value = self.inserted_pages
            read_miss.value = self.read_miss_pages
            evictions.value = self.evictions
            evicted.value = self.evicted_pages

        registry.register_collector(flush_counts)

    def record(self, request: IORequest, record: RequestRecord) -> None:
        """Fold one serviced request into the instruments."""
        outcome = record.outcome
        self.n_requests += 1
        if request.op is OpType.READ:
            self.n_reads += 1
        else:
            self.n_writes += 1
        self.page_hits += outcome.page_hits
        self.page_misses += outcome.page_misses
        self.inserted_pages += outcome.inserted_pages
        if outcome.read_miss_lpns:
            self.read_miss_pages += len(outcome.read_miss_lpns)
        if outcome.flushes:
            for batch in outcome.flushes:
                if batch.lpns:
                    self.evictions += 1
                    self.evicted_pages += len(batch.lpns)
                    self._eviction_batch.observe(len(batch.lpns))
        self._response.observe(record.response_ms)
        self._rate.mark(request.time)


@dataclass(slots=True)
class ReplayMetrics:
    """Aggregated results of replaying one trace through one policy.

    ``slots=True``: :meth:`record` runs once per request and reads ~10
    attributes; slot loads skip the instance-dict probe (and the class
    pickles the same way, which the parallel engine relies on)."""

    trace_name: str = ""
    policy_name: str = ""
    cache_pages: int = 0

    # Cache behaviour.
    pages: RatioCounter = field(default_factory=RatioCounter)
    read_pages: RatioCounter = field(default_factory=RatioCounter)
    write_pages: RatioCounter = field(default_factory=RatioCounter)

    # Timing.
    response_ms: RunningStats = field(default_factory=RunningStats)
    read_response_ms: RunningStats = field(default_factory=RunningStats)
    write_response_ms: RunningStats = field(default_factory=RunningStats)
    response_quantiles: ReservoirQuantiles = field(
        default_factory=ReservoirQuantiles
    )

    # Evictions.
    eviction_hist: Histogram = field(default_factory=Histogram)

    # Flash traffic (filled in at the end of replay).
    host_flush_pages: int = 0
    gc_migrated_pages: int = 0
    gc_erases: int = 0
    flash_total_writes: int = 0

    # Metadata footprint (sampled).
    metadata_bytes: RunningStats = field(default_factory=RunningStats)

    # Device utilisation over the replay horizon (full replays only).
    mean_plane_utilisation: float = 0.0
    max_plane_utilisation: float = 0.0
    mean_bus_utilisation: float = 0.0

    # Req-block list occupancy log: (request index, {"IRL": n, ...}).
    list_log: List[Tuple[int, Dict[str, int]]] = field(default_factory=list)

    # Runtime telemetry (opt-in; see docs/metrics.md).  ``metrics_series``
    # is the sampler's snapshot list (one flat dict per cadence point);
    # ``phase_profile`` maps phase name -> calls/total_ms/self_ms when the
    # replay ran with a profiler.  Both stay out of :meth:`summary` so
    # the headline numbers are unchanged whether telemetry is on or off.
    metrics_series: List[Dict[str, float]] = field(default_factory=list)
    phase_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    #: Hex sha256 over the eviction sequence (see
    #: :func:`fold_eviction_digest`), populated when the replay ran with
    #: ``ReplayConfig.digest_evictions``; empty otherwise.  Kept out of
    #: :meth:`summary` so enabling digests never changes reported
    #: numbers.  Merging shards chains the per-shard digests in shard
    #: order, so a merged digest is reproducible but — unlike every
    #: other field — only comparable between runs that used the same
    #: shard boundaries.
    eviction_digest: str = ""

    #: Per-tenant rollups (tenant index -> :class:`TenantStats`),
    #: populated when the replay ran with a tenant map configured.
    #: Empty for legacy single-tenant runs, and absent from
    #: :meth:`summary`, so enabling tenancy never perturbs the headline
    #: numbers.  Merges per-key like every other field.
    tenants: Dict[int, TenantStats] = field(default_factory=dict)

    n_requests: int = 0

    # Robustness (see repro.faults).  ``aborted_reason`` is set when a
    # device-fatal error cut the replay short — the metrics accumulated
    # up to that point are still valid partial results.  ``durability``
    # is populated whenever fault injection, a power loss, or degraded
    # mode touched the run.
    aborted_reason: str = ""
    aborted_at_request: int = -1
    durability: Optional[DurabilityReport] = None

    @property
    def aborted(self) -> bool:
        """Whether the replay ended early on a device-fatal error."""
        return bool(self.aborted_reason)

    @property
    def salvaged(self) -> bool:
        """Whether the shard supervisor dropped failed shards to finish
        this run (see :mod:`repro.sim.supervisor`)."""
        return self.durability is not None and self.durability.salvaged

    @property
    def shard_coverage(self) -> float:
        """Fraction of planned shards represented in these metrics
        (1.0 for unsupervised and clean supervised runs)."""
        if self.durability is None:
            return 1.0
        return self.durability.shard_coverage

    # ------------------------------------------------------------------
    def record(self, request: IORequest, record: RequestRecord) -> None:
        """Fold one serviced request into the aggregates.

        The :class:`RunningStats` / :class:`ReservoirQuantiles` updates
        are inlined (same statements, same order as their ``add``
        methods — each accumulator's float-op sequence is unchanged, so
        the results stay bit-identical); this method runs once per
        request and the call overhead was visible in replay profiles.
        """
        outcome = record.outcome
        x = record.response_ms
        hits = outcome.page_hits
        total = hits + outcome.page_misses
        self.n_requests += 1
        pages = self.pages
        pages.hits += hits
        pages.total += total
        if request.op is OpType.READ:
            side = self.read_pages
            rs = self.read_response_ms
        else:
            side = self.write_pages
            rs = self.write_response_ms
        side.hits += hits
        side.total += total
        # Inlined RunningStats.add — per-side response stream.
        rs.count = n = rs.count + 1
        rs.total += x
        mean = rs._mean
        delta = x - mean
        mean += delta / n
        rs._mean = mean
        rs._m2 += delta * (x - mean)
        if x < rs.min:
            rs.min = x
        if x > rs.max:
            rs.max = x
        # Inlined RunningStats.add — overall response stream.
        rs = self.response_ms
        rs.count = n = rs.count + 1
        rs.total += x
        mean = rs._mean
        delta = x - mean
        mean += delta / n
        rs._mean = mean
        rs._m2 += delta * (x - mean)
        if x < rs.min:
            rs.min = x
        if x > rs.max:
            rs.max = x
        # Inlined ReservoirQuantiles.add (same seeded LCG stepping).
        rq = self.response_quantiles
        rq.count = n = rq.count + 1
        samples = rq._samples
        if len(samples) < rq.capacity:
            samples.append(x)
        else:
            rq._state = state = (rq._state * 0x5DEECE66D + 0xB) & 0xFFFFFFFFFFFF
            j = (state >> 16) % n
            if j < rq.capacity:
                samples[j] = x
        flushes = outcome.flushes
        if flushes:
            # Inlined Histogram.add — LRU emits one single-page batch
            # per evicted page, so this runs ~3x per request there.
            buckets = self.eviction_hist._buckets
            buckets_get = buckets.get
            for batch in flushes:
                lpns = batch.lpns
                if lpns:
                    k = len(lpns)
                    buckets[k] = buckets_get(k, 0.0) + 1.0

    # ------------------------------------------------------------------
    # Parallel reduction
    # ------------------------------------------------------------------
    def merge(self, other: "ReplayMetrics") -> "ReplayMetrics":
        """Fold another shard's metrics into this one; returns ``self``.

        The parallel engine reduces shard results with a left fold in
        shard-index order, so ``merge`` only has to be deterministic for
        a *fixed* fold order — worker completion order never reaches it.
        Integer counters, histograms and the hit/total ratios combine
        exactly (they are associative); the Welford accumulators merge
        with the standard pooled-moment formulas, which agree with the
        serial fold on count/min/max/total exactly and on mean/variance
        to floating-point reassociation error; the quantile reservoirs
        concatenate (exact while the combined sample count stays within
        capacity, deterministic stride-thinning beyond).

        ``other``'s request-indexed logs (``list_log``,
        ``metrics_series``, ``aborted_at_request``) are shifted by the
        requests already folded into ``self``, so merged indices match a
        serial replay's numbering.  A fresh ``ReplayMetrics()`` is the
        identity element.  ``other`` is not modified.
        """
        offset = self.n_requests
        if not self.trace_name:
            self.trace_name = other.trace_name
        if not self.policy_name:
            self.policy_name = other.policy_name
        if not self.cache_pages:
            self.cache_pages = other.cache_pages

        self.pages.merge(other.pages)
        self.read_pages.merge(other.read_pages)
        self.write_pages.merge(other.write_pages)
        self.response_ms.merge(other.response_ms)
        self.read_response_ms.merge(other.read_response_ms)
        self.write_response_ms.merge(other.write_response_ms)
        self.response_quantiles.merge(other.response_quantiles)
        self.eviction_hist.merge(other.eviction_hist)
        self.metadata_bytes.merge(other.metadata_bytes)

        self.host_flush_pages += other.host_flush_pages
        self.gc_migrated_pages += other.gc_migrated_pages
        self.gc_erases += other.gc_erases
        self.flash_total_writes += other.flash_total_writes

        # Device utilisation: request-weighted mean of means, max of
        # maxes (each shard ran its own device over its own horizon).
        total = self.n_requests + other.n_requests
        if total:
            w_self, w_other = self.n_requests / total, other.n_requests / total
            self.mean_plane_utilisation = (
                w_self * self.mean_plane_utilisation
                + w_other * other.mean_plane_utilisation
            )
            self.mean_bus_utilisation = (
                w_self * self.mean_bus_utilisation
                + w_other * other.mean_bus_utilisation
            )
        self.max_plane_utilisation = max(
            self.max_plane_utilisation, other.max_plane_utilisation
        )

        self.list_log.extend(
            (offset + i, dict(counts)) for i, counts in other.list_log
        )
        for snapshot in other.metrics_series:
            shifted = dict(snapshot)
            if "index" in shifted:
                shifted["index"] = offset + shifted["index"]
            self.metrics_series.append(shifted)
        for phase, cells in other.phase_profile.items():
            mine = self.phase_profile.setdefault(phase, {})
            for key, value in cells.items():
                mine[key] = mine.get(key, 0.0) + value

        for tenant, stats in other.tenants.items():
            mine = self.tenants.get(tenant)
            if mine is None:
                self.tenants[tenant] = TenantStats().merge(stats)
            else:
                mine.merge(stats)

        if other.eviction_digest:
            if self.eviction_digest:
                h = hashlib.sha256()
                h.update(self.eviction_digest.encode())
                h.update(other.eviction_digest.encode())
                self.eviction_digest = h.hexdigest()
            else:
                self.eviction_digest = other.eviction_digest

        if other.aborted and not self.aborted:
            self.aborted_reason = other.aborted_reason
            self.aborted_at_request = offset + other.aborted_at_request

        if other.durability is not None:
            if self.durability is None:
                self.durability = copy.deepcopy(other.durability)
            else:
                self.durability.merge(other.durability)

        self.n_requests = total
        return self

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """Fraction of accessed pages absorbed by the cache (Fig. 9)."""
        return self.pages.ratio

    @property
    def mean_response_ms(self) -> float:
        """Mean per-request I/O response time (Fig. 8)."""
        return self.response_ms.mean

    @property
    def total_response_ms(self) -> float:
        """Summed response time — the figure's 'overall I/O response time'."""
        return self.response_ms.total

    def response_percentile(self, q: float) -> float:
        """Estimated response-time quantile (e.g. q=0.99 for p99)."""
        return self.response_quantiles.quantile(q)

    @property
    def eviction_count(self) -> int:
        """Total eviction operations observed."""
        return int(round(sum(w for _k, w in self.eviction_hist.items())))

    @property
    def mean_eviction_pages(self) -> float:
        """Average pages per eviction operation (Fig. 10)."""
        return self.eviction_hist.mean()

    @property
    def mean_metadata_kb(self) -> float:
        """Average replacement-metadata footprint in KB (Fig. 12)."""
        return self.metadata_bytes.mean / 1024.0

    @property
    def max_metadata_kb(self) -> float:
        """Peak sampled metadata footprint in KB."""
        return (self.metadata_bytes.max / 1024.0) if self.metadata_bytes.count else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (report/CSV friendly)."""
        return {
            "trace": self.trace_name,
            "policy": self.policy_name,
            "cache_pages": self.cache_pages,
            "requests": self.n_requests,
            "hit_ratio": self.hit_ratio,
            "read_hit_ratio": self.read_pages.ratio,
            "write_hit_ratio": self.write_pages.ratio,
            "mean_response_ms": self.mean_response_ms,
            "p99_response_ms": self.response_percentile(0.99),
            "total_response_ms": self.total_response_ms,
            "evictions": self.eviction_count,
            "mean_eviction_pages": self.mean_eviction_pages,
            "host_flush_pages": self.host_flush_pages,
            "gc_migrated_pages": self.gc_migrated_pages,
            "flash_total_writes": self.flash_total_writes,
            "mean_metadata_kb": self.mean_metadata_kb,
            "mean_plane_utilisation": self.mean_plane_utilisation,
        }

    def tenant_summary(self) -> Dict[int, Dict[str, float]]:
        """Per-tenant headline numbers, keyed by tenant index.

        Empty for legacy (tenant-less) replays; see
        :class:`repro.sim.tenant.TenantStats`.
        """
        return {i: self.tenants[i].summary() for i in sorted(self.tenants)}


def merge_metrics(parts: Sequence[ReplayMetrics]) -> ReplayMetrics:
    """Left-fold shard metrics, in sequence order, into a fresh instance.

    The single reduction point of the parallel engine: callers sort
    shard results by shard index *before* reducing, so the outcome is
    independent of worker scheduling.  An empty sequence yields an
    all-zero :class:`ReplayMetrics`; the inputs are never modified.
    """
    merged = ReplayMetrics()
    for part in parts:
        merged.merge(part)
    return merged
