"""Req-block: DRAM cache management with request granularity for NAND SSDs.

Reproduction of Lin et al., ICPP 2022 (DOI 10.1145/3545008.3545081).

Quickstart
----------
>>> from repro import ReqBlockCache, ReplayConfig, get_workload, replay_trace
>>> trace = get_workload("src1_2", scale=1 / 64)
>>> metrics = replay_trace(trace, ReplayConfig(policy="reqblock",
...                                            cache_bytes=1 << 20))
>>> 0.0 <= metrics.hit_ratio <= 1.0
True

Package layout
--------------
``repro.core``
    The Req-block policy: request blocks, IRL/SRL/DRL lists, Eq. 1.
``repro.cache``
    Policy framework + baselines (LRU, FIFO, LFU, CFLRU, FAB, BPLRU,
    VBBMS) and the registry.
``repro.ssd``
    SSDsim-like device model: geometry, FTL, GC, channel/chip timing.
``repro.traces``
    Request model, MSR-Cambridge parser, calibrated synthetic workloads.
``repro.sim``
    Replay drivers, metrics, reporting, parallel sweeps.
``repro.analysis``
    Motivation statistics (Figures 2/3) and list-occupancy analysis.
``repro.experiments``
    One module per paper table/figure.
"""

from repro.cache import (
    AccessOutcome,
    BPLRUCache,
    CachePolicy,
    CFLRUCache,
    FABCache,
    FIFOCache,
    FlushBatch,
    LFUCache,
    LRUCache,
    PAPER_COMPARISON,
    VBBMSCache,
    available_policies,
    create_policy,
)
from repro.core import (
    AdaptiveReqBlockCache,
    DEFAULT_DELTA,
    ListLevel,
    ReqBlockCache,
    RequestBlock,
)
from repro.sim import (
    ReplayConfig,
    ReplayMetrics,
    replay_cache_only,
    replay_trace,
)
from repro.sim.export import write_csv, write_json
from repro.ssd import PAPER_SSD, SSDConfig, SSDController
from repro.traces import (
    IORequest,
    OpType,
    SyntheticConfig,
    Trace,
    WORKLOAD_ORDER,
    characterize,
    generate_trace,
    get_workload,
    load_msr_trace,
    scaled_cache_bytes,
)

__version__ = "1.0.0"

__all__ = [
    "AccessOutcome",
    "BPLRUCache",
    "CachePolicy",
    "CFLRUCache",
    "FABCache",
    "FIFOCache",
    "FlushBatch",
    "LFUCache",
    "LRUCache",
    "PAPER_COMPARISON",
    "VBBMSCache",
    "available_policies",
    "create_policy",
    "AdaptiveReqBlockCache",
    "DEFAULT_DELTA",
    "ListLevel",
    "ReqBlockCache",
    "RequestBlock",
    "ReplayConfig",
    "ReplayMetrics",
    "replay_cache_only",
    "replay_trace",
    "PAPER_SSD",
    "SSDConfig",
    "SSDController",
    "IORequest",
    "OpType",
    "SyntheticConfig",
    "Trace",
    "WORKLOAD_ORDER",
    "characterize",
    "generate_trace",
    "get_workload",
    "load_msr_trace",
    "scaled_cache_bytes",
    "write_csv",
    "write_json",
    "__version__",
]
