"""Grown-bad-block management over the flash array's spare pools.

NAND blocks die in two ways the error model injects: a *program
failure* (a page refuses to program; JEDEC says retire the block once
its live data is rescued) and an *erase failure* (the block won't
erase; retire immediately — it holds only stale data by then).  The
:class:`BadBlockManager` centralises the bookkeeping both paths share:

* move the block to the :attr:`FlashArray.retired` set (never
  allocated, collected or erased again);
* draw a factory spare into the plane's free list while spares last —
  after that, every retirement permanently shrinks over-provisioning,
  which is what eventually drives the device into degraded mode;
* emit :class:`~repro.obs.events.BlockRetired` for the tracer and keep
  the per-plane grown-bad-block ledger the invariant checker audits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.obs.events import BlockRetired
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.flash import FlashArray

__all__ = ["BadBlockManager"]


class BadBlockManager:
    """Retirement bookkeeping for one flash array."""

    __slots__ = (
        "flash",
        "tracer",
        "grown",
        "blocks_retired",
        "spares_consumed",
    )

    def __init__(self, flash: "FlashArray", tracer: "Tracer | None" = None) -> None:
        self.flash = flash
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: plane -> retired block indices, in retirement order.
        self.grown: Dict[int, List[int]] = {}
        self.blocks_retired = 0
        self.spares_consumed = 0

    # ------------------------------------------------------------------
    def reserve_spares(self, per_plane: int) -> None:
        """Carve the factory spare pools out of the free lists (once)."""
        self.flash.reserve_spares(per_plane)

    def spares_remaining(self, plane: int) -> int:
        """Unused factory spares left in ``plane``."""
        return len(self.flash.spare_blocks[plane])

    def total_spares_remaining(self) -> int:
        """Unused factory spares left device-wide."""
        return sum(len(s) for s in self.flash.spare_blocks)

    # ------------------------------------------------------------------
    def retire(self, block: int, now: float, reason: str) -> None:
        """Retire ``block`` and backfill from the plane's spare pool.

        The caller guarantees the block holds no valid pages and is not
        a write point (the injector's retirement path arranges both).
        """
        flash = self.flash
        plane = flash.geometry.plane_of_block(block)
        flash.retire_block(block)
        if flash.draw_spare(plane):
            self.spares_consumed += 1
        self.grown.setdefault(plane, []).append(block)
        self.blocks_retired += 1
        if self.tracer.enabled:
            self.tracer.emit(
                BlockRetired(
                    now, plane, block, reason, self.spares_remaining(plane)
                )
            )
