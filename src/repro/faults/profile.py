"""Fault profiles: named, validated parameter sets for the error model.

A :class:`FaultProfile` bundles every knob of the fault-injection
subsystem — per-operation failure probabilities, wear coupling, the ECC
read-retry ladder, spare-block provisioning and the power-loss recovery
cost model — into one frozen dataclass.  Profiles are the unit the CLI
exposes (``--fault-profile default``) and experiments sweep.

Probabilities are *per physical operation* (one page program, one block
erase, one page read), matching how NAND datasheets quote raw bit /
operation error rates after ECC.  ``wear_coupling`` scales each
probability with the target block's consumed endurance::

    p_effective = p_base * (1 + wear_coupling * erases / pe_cycle_limit)

so a profile with coupling models the end-of-life cliff: young devices
barely fail, worn ones fail increasingly often (cf. Flashield's
wear-out bounding argument, PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.utils.validation import (
    require_in_range,
    require_non_negative,
)

__all__ = ["FaultProfile", "FAULT_PROFILES", "get_profile"]


@dataclass(frozen=True)
class FaultProfile:
    """All parameters of the fault-injection subsystem (see module doc)."""

    name: str = "default"
    #: Per-page-program failure probability (the block then retires).
    program_fail_prob: float = 1e-4
    #: Per-block-erase failure probability (the block then retires).
    erase_fail_prob: float = 5e-4
    #: Probability a host page read needs at least one ECC retry.
    read_error_prob: float = 1e-3
    #: Probability each successive retry rung recovers the data.
    retry_success_prob: float = 0.75
    #: Escalating cell-read latencies of the retry ladder (ms).  Reads
    #: that exhaust the ladder are unrecoverable (accounted, not fatal).
    read_retry_latencies_ms: Tuple[float, ...] = (0.09, 0.12, 0.18, 0.3)
    #: Endurance scaling of all three probabilities (0 = wear-blind).
    wear_coupling: float = 4.0
    #: Factory spare blocks reserved per plane to replace grown bad
    #: blocks; drawn from the free list at attach time.
    spare_blocks_per_plane: int = 2
    #: Power-loss mount: OOB-scan cost per written physical page (ms).
    mount_scan_ms_per_page: float = 0.002
    #: Power-loss mount: fixed controller boot cost (ms).
    mount_base_ms: float = 50.0

    def __post_init__(self) -> None:
        require_in_range(self.program_fail_prob, "program_fail_prob", 0.0, 1.0)
        require_in_range(self.erase_fail_prob, "erase_fail_prob", 0.0, 1.0)
        require_in_range(self.read_error_prob, "read_error_prob", 0.0, 1.0)
        require_in_range(self.retry_success_prob, "retry_success_prob", 0.0, 1.0)
        require_non_negative(self.wear_coupling, "wear_coupling")
        require_non_negative(self.spare_blocks_per_plane, "spare_blocks_per_plane")
        require_non_negative(self.mount_scan_ms_per_page, "mount_scan_ms_per_page")
        require_non_negative(self.mount_base_ms, "mount_base_ms")
        if not self.read_retry_latencies_ms:
            raise ValueError("read_retry_latencies_ms must have at least one rung")
        for latency in self.read_retry_latencies_ms:
            if latency <= 0:
                raise ValueError("retry latencies must be positive")

    def scaled(self, wear_fraction: float) -> "FaultProfile":
        """A copy with probabilities scaled to ``wear_fraction`` consumed
        endurance — convenience for end-of-life studies."""
        factor = 1.0 + self.wear_coupling * max(0.0, wear_fraction)
        return replace(
            self,
            name=f"{self.name}@{wear_fraction:.2f}",
            program_fail_prob=min(1.0, self.program_fail_prob * factor),
            erase_fail_prob=min(1.0, self.erase_fail_prob * factor),
            read_error_prob=min(1.0, self.read_error_prob * factor),
        )


#: Named profiles the CLI exposes.  ``none`` disables the subsystem
#: entirely (the zero-overhead default); ``default`` uses datasheet-ish
#: rates; ``harsh`` makes every failure mode show up in short replays;
#: ``wearout`` is wear-dominated (young blocks nearly perfect).
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "default": FaultProfile(name="default"),
    "harsh": FaultProfile(
        name="harsh",
        program_fail_prob=2e-3,
        erase_fail_prob=1e-2,
        read_error_prob=2e-2,
        retry_success_prob=0.6,
        spare_blocks_per_plane=3,
    ),
    "wearout": FaultProfile(
        name="wearout",
        program_fail_prob=1e-5,
        erase_fail_prob=5e-5,
        read_error_prob=1e-4,
        wear_coupling=200.0,
        spare_blocks_per_plane=4,
    ),
}


def get_profile(name_or_profile: "str | FaultProfile | None") -> "FaultProfile | None":
    """Resolve a CLI/profile argument to a :class:`FaultProfile`.

    ``None`` and ``"none"`` mean *no fault injection*; a profile object
    passes through unchanged; a string looks up :data:`FAULT_PROFILES`.
    """
    if name_or_profile is None or name_or_profile == "none":
        return None
    if isinstance(name_or_profile, FaultProfile):
        return name_or_profile
    try:
        return FAULT_PROFILES[name_or_profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name_or_profile!r}; "
            f"choose from {('none', *sorted(FAULT_PROFILES))}"
        ) from None
