"""Graceful degradation state: read-only mode with backpressure counters.

When garbage collection cannot reclaim space and the spare pool is dry,
a real SSD does not crash the host — it fails writes (or throttles them
to a trickle) while still serving reads.  :class:`DegradedMode` is the
controller-owned flag + accounting for that terminal state, replacing
the pre-fault-subsystem behaviour of propagating
:class:`~repro.ssd.flash.FlashOutOfSpace` out of the replay loop and
losing every accumulated metric.

The state machine is one-way: once entered, the device stays degraded
for the rest of the replay (mirroring real devices, which need a secure
erase to leave read-only mode).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DegradedMode"]


@dataclass
class DegradedMode:
    """Read-only / write-rejecting device state (one-way latch)."""

    active: bool = False
    reason: str = ""
    entered_at_ms: float = 0.0
    #: Plane whose allocation failure tripped the latch (-1 = unknown).
    plane: int = -1

    # Backpressure accounting.
    writes_rejected_requests: int = 0
    writes_rejected_pages: int = 0
    #: Cache-eviction pages that could not be programmed (data dropped).
    flush_pages_dropped: int = 0
    #: Read requests served while degraded (the mode keeps them alive).
    reads_served: int = 0

    def enter(self, reason: str, now: float, plane: int = -1) -> bool:
        """Latch degraded mode; returns True on the first entry only."""
        if self.active:
            return False
        self.active = True
        self.reason = reason
        self.entered_at_ms = now
        self.plane = plane
        return True
