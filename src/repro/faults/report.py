"""Durability reporting: what the fault subsystem did to one replay.

Kept dependency-free (pure dataclass) so :mod:`repro.sim.metrics` can
embed a report without dragging device imports into the cache-only
paths.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = ["PowerLossReport", "DurabilityReport"]


@dataclass
class PowerLossReport:
    """Outcome of one injected power loss + mount recovery."""

    at_request: int = -1
    at_time_ms: float = 0.0
    #: Dirty pages sitting in DRAM at the loss instant (the write buffer
    #: holds only dirty data, so this is the cache occupancy census).
    dirty_pages: int = 0
    #: Pages the capacitor budget managed to flush before the rails fell.
    saved_pages: int = 0
    #: Dirty pages that never reached flash — the durability loss.
    lost_pages: int = 0
    #: First few lost LPNs (diagnostics; the full set can be huge).
    lost_lpns_sample: Tuple[int, ...] = ()
    #: Mount-time OOB scan: pages read and modeled wall time.
    scanned_pages: int = 0
    recovery_ms: float = 0.0
    #: Mappings rebuilt by the scan (must equal the pre-loss flash state).
    remapped_pages: int = 0


@dataclass
class DurabilityReport:
    """Aggregate fault/degradation accounting for one replay."""

    fault_profile: str = "none"
    fault_seed: int = 0

    # NAND error model.
    program_fails: int = 0
    erase_fails: int = 0
    read_retries: int = 0
    reads_with_retry: int = 0
    unrecoverable_reads: int = 0

    # Bad-block management.
    blocks_retired: int = 0
    spares_consumed: int = 0
    spares_remaining: int = 0

    # Power loss.
    power_loss: Optional[PowerLossReport] = None

    # Graceful degradation.
    degraded: bool = False
    degraded_reason: str = ""
    degraded_at_ms: float = 0.0
    writes_rejected_requests: int = 0
    writes_rejected_pages: int = 0
    flush_pages_dropped: int = 0

    # Harness resilience (set by the shard supervisor on merged
    # results, not by any device): how the *experiment run itself*
    # degraded.  ``shards_planned == 0`` means the run was unsupervised
    # or clean — these fields then stay out of rows()/summaries so a
    # clean supervised run reports identically to a plain one.
    shards_planned: int = 0
    shards_failed: Tuple[int, ...] = ()
    shard_retries: int = 0
    shard_timeouts: int = 0

    #: Free-form counters contributed by components (extensible).
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def merge(self, other: "DurabilityReport") -> "DurabilityReport":
        """Fold another shard's report into this one; returns ``self``.

        Shards run independent devices, so the event counters simply
        add (spares_remaining included: it is the sum of what each
        shard's device had left).  Identity fields keep the first
        non-default value; ``degraded`` is sticky and keeps the first
        reason; the first power-loss report wins (segment-sharded
        replay rejects power-loss injection, so in practice at most one
        shard carries one).  ``other`` is not modified.
        """
        if self.fault_profile == "none":
            self.fault_profile = other.fault_profile
            self.fault_seed = other.fault_seed
        self.program_fails += other.program_fails
        self.erase_fails += other.erase_fails
        self.read_retries += other.read_retries
        self.reads_with_retry += other.reads_with_retry
        self.unrecoverable_reads += other.unrecoverable_reads
        self.blocks_retired += other.blocks_retired
        self.spares_consumed += other.spares_consumed
        self.spares_remaining += other.spares_remaining
        if self.power_loss is None and other.power_loss is not None:
            self.power_loss = replace(other.power_loss)
        if other.degraded and not self.degraded:
            self.degraded = True
            self.degraded_reason = other.degraded_reason
            self.degraded_at_ms = other.degraded_at_ms
        self.writes_rejected_requests += other.writes_rejected_requests
        self.writes_rejected_pages += other.writes_rejected_pages
        self.flush_pages_dropped += other.flush_pages_dropped
        self.shards_planned += other.shards_planned
        self.shards_failed = tuple(
            sorted(set(self.shards_failed) | set(other.shards_failed))
        )
        self.shard_retries += other.shard_retries
        self.shard_timeouts += other.shard_timeouts
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    @property
    def salvaged(self) -> bool:
        """Whether the harness dropped shards to finish this run."""
        return bool(self.shards_failed)

    @property
    def shard_coverage(self) -> float:
        """Fraction of planned shards whose results made it in."""
        if self.shards_planned <= 0:
            return 1.0
        return 1.0 - len(self.shards_failed) / self.shards_planned

    @property
    def lost_writes(self) -> int:
        """Total host pages whose durability was lost: dirty pages that
        died with the power rails plus flush pages the degraded device
        had to drop."""
        lost = self.flush_pages_dropped
        if self.power_loss is not None:
            lost += self.power_loss.lost_pages
        return lost

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly flat-ish form (power loss nested when present)."""
        d = asdict(self)
        d["lost_writes"] = self.lost_writes
        d["shards_failed"] = list(self.shards_failed)
        d["shard_coverage"] = self.shard_coverage
        return d

    def rows(self) -> List[Tuple[str, object]]:
        """(name, value) rows for the CLI's durability table."""
        rows: List[Tuple[str, object]] = [
            ("fault_profile", self.fault_profile),
            ("fault_seed", self.fault_seed),
            ("program_fails", self.program_fails),
            ("erase_fails", self.erase_fails),
            ("reads_with_retry", self.reads_with_retry),
            ("read_retries", self.read_retries),
            ("unrecoverable_reads", self.unrecoverable_reads),
            ("blocks_retired", self.blocks_retired),
            ("spares_consumed", self.spares_consumed),
            ("spares_remaining", self.spares_remaining),
            ("lost_writes", self.lost_writes),
            ("degraded", self.degraded),
        ]
        if self.degraded:
            rows += [
                ("degraded_reason", self.degraded_reason),
                ("writes_rejected_pages", self.writes_rejected_pages),
                ("flush_pages_dropped", self.flush_pages_dropped),
            ]
        if self.power_loss is not None:
            p = self.power_loss
            rows += [
                ("power_loss_at_request", p.at_request),
                ("dirty_pages_at_loss", p.dirty_pages),
                ("capacitor_saved_pages", p.saved_pages),
                ("power_loss_lost_pages", p.lost_pages),
                ("recovery_ms", p.recovery_ms),
                ("recovery_scanned_pages", p.scanned_pages),
            ]
        if self.shards_planned:
            rows += [
                ("shards_planned", self.shards_planned),
                ("shards_failed", list(self.shards_failed)),
                ("shard_coverage", round(self.shard_coverage, 4)),
                ("shard_retries", self.shard_retries),
                ("shard_timeouts", self.shard_timeouts),
            ]
        return rows
