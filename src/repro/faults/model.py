"""NAND error model: seeded per-operation failure decisions.

:class:`NandErrorModel` is the only component that consumes randomness
in the fault subsystem.  Every decision draws from one explicit
``numpy.random.Generator`` in a fixed per-operation order, so a replay
with the same seed, trace and policy produces the *same fault sequence*
— the reproducibility contract the CI check pins (see
``docs/fault_injection.md`` and CONTRIBUTING.md's seeding convention).

Wear coupling: probabilities scale linearly with the target block's
consumed endurance (``erases / pe_cycle_limit``), so a wear-dominated
profile ("wearout") behaves like a young device until GC churn ages
blocks, then starts growing bad blocks — exactly the over-provisioning
death spiral the degraded-mode path must survive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.profile import FaultProfile
from repro.utils.rng import resolve_rng

__all__ = ["NandErrorModel"]


class NandErrorModel:
    """Seeded failure decisions for program / erase / read operations."""

    __slots__ = ("profile", "rng", "_pe_limit")

    def __init__(
        self,
        profile: FaultProfile,
        rng: "np.random.Generator | int | None" = None,
        pe_cycle_limit: int = 3000,
    ) -> None:
        """``rng`` may be a ready Generator, an int seed, or None (seed 0);
        module-level global RNG state is deliberately never used."""
        self.profile = profile
        self.rng = resolve_rng(rng)
        self._pe_limit = max(1, pe_cycle_limit)

    # ------------------------------------------------------------------
    def _effective(self, base: float, erase_count: int) -> float:
        """Wear-coupled probability for a block with ``erase_count`` P/Es."""
        coupling = self.profile.wear_coupling
        if coupling <= 0.0 or erase_count <= 0:
            return base
        return min(1.0, base * (1.0 + coupling * erase_count / self._pe_limit))

    # ------------------------------------------------------------------
    def program_fails(self, erase_count: int = 0) -> bool:
        """Whether the next page program on a block this worn fails."""
        p = self._effective(self.profile.program_fail_prob, erase_count)
        return bool(self.rng.random() < p) if p > 0.0 else False

    def erase_fails(self, erase_count: int = 0) -> bool:
        """Whether the next erase of a block this worn fails."""
        p = self._effective(self.profile.erase_fail_prob, erase_count)
        return bool(self.rng.random() < p) if p > 0.0 else False

    def read_retries(self, erase_count: int = 0) -> Optional[int]:
        """ECC outcome of one page read.

        Returns ``0`` for a clean read, ``n >= 1`` when the read
        recovered after ``n`` ladder rungs, or ``None`` when the whole
        ladder was exhausted (unrecoverable read).  One uniform draw for
        the initial read plus one per rung keeps the consumed-randomness
        count deterministic per outcome.
        """
        p = self._effective(self.profile.read_error_prob, erase_count)
        if p <= 0.0 or self.rng.random() >= p:
            return 0
        ladder = self.profile.read_retry_latencies_ms
        success = self.profile.retry_success_prob
        for rung in range(1, len(ladder) + 1):
            if self.rng.random() < success:
                return rung
        return None
