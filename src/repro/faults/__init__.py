"""Fault injection & recovery: NAND error model, bad-block management,
power-loss/crash recovery, and graceful degraded mode.

The subsystem turns the reproduction's perfect device into a
durability-vs-hit-ratio testbed (see ``docs/fault_injection.md``):

* :class:`FaultProfile` / :data:`FAULT_PROFILES` — named parameter sets
  (``--fault-profile`` on the CLI);
* :class:`NandErrorModel` — seeded, wear-coupled per-operation failure
  decisions (all randomness flows through one explicit
  ``numpy.random.Generator``);
* :class:`FaultInjector` / :data:`NULL_FAULTS` — the façade the FTL and
  GC consult; handles page burns, valid-data rescue and block
  retirement via :class:`BadBlockManager`;
* :func:`inject_power_loss` — dirty-cache loss (minus a capacitor
  budget) plus the OOB-scan mount that rebuilds the FTL mapping;
* :class:`DegradedMode` — the read-only latch replacing the old
  ``FlashOutOfSpace`` crash, with backpressure counters;
* :class:`DurabilityReport` — per-replay accounting surfaced by the CLI
  and ``experiments/reliability_study.py``.
"""

from repro.faults.badblocks import BadBlockManager
from repro.faults.degraded import DegradedMode
from repro.faults.injector import (
    NULL_FAULTS,
    FaultInjector,
    NullFaultInjector,
)
from repro.faults.model import NandErrorModel
from repro.faults.powerloss import inject_power_loss
from repro.faults.profile import FAULT_PROFILES, FaultProfile, get_profile
from repro.faults.report import DurabilityReport, PowerLossReport

__all__ = [
    "BadBlockManager",
    "DegradedMode",
    "DurabilityReport",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "NULL_FAULTS",
    "NandErrorModel",
    "NullFaultInjector",
    "PowerLossReport",
    "get_profile",
    "inject_power_loss",
]
