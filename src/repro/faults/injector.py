"""Fault injector: the façade the FTL and GC consult on every operation.

One :class:`FaultInjector` per device couples the seeded
:class:`~repro.faults.model.NandErrorModel` to the consequences of each
injected failure:

* **program failure** — the allocated page is burned
  (:meth:`FlashArray.mark_program_failed`), the block's surviving valid
  pages are rescued via GC-style relocation, and the block retires
  through the :class:`~repro.faults.badblocks.BadBlockManager` (drawing
  a spare while any remain).  The caller retries on a fresh block.
* **erase failure** — the GC victim (already fully migrated) retires
  instead of returning to the free list.
* **read error** — the ECC read-retry ladder schedules escalating
  re-reads on the plane timeline; exhausting the ladder counts an
  unrecoverable read (the replay continues — data loss is accounted,
  not fatal).

Failure handling never nests: while a retirement migration is in
flight the injector is *suspended*, so rescue programs cannot themselves
fail (bounded recursion, documented simplification).

The shared :data:`NULL_FAULTS` mirrors ``NULL_TRACER``: components
guard every hook with ``if faults.enabled:``, keeping the fault-free
hot path at one attribute load and branch per operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.badblocks import BadBlockManager
from repro.faults.model import NandErrorModel
from repro.faults.profile import FaultProfile
from repro.faults.report import DurabilityReport
from repro.obs.events import FaultInjected, ReadRetry
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.flash import FlashArray
    from repro.ssd.ftl import PageFTL
    from repro.ssd.resources import OpTimes, ResourceTimelines

__all__ = ["FaultInjector", "NullFaultInjector", "NULL_FAULTS"]

#: Program attempts per host page before the injector gives up injecting
#: (forced success) — keeps a pathological profile from livelocking.
MAX_PROGRAM_ATTEMPTS = 3


class NullFaultInjector:
    """Disabled injector; the fault-free default (cf. ``NullTracer``)."""

    enabled = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullFaultInjector>"


#: Shared singleton — components default their ``faults`` to this.
NULL_FAULTS = NullFaultInjector()


class FaultInjector:
    """Seeded NAND fault injection + consequence handling for one device."""

    enabled = True

    __slots__ = (
        "profile",
        "seed",
        "model",
        "tracer",
        "flash",
        "bad_blocks",
        "_suspended",
        "program_fails",
        "erase_fails",
        "reads_with_retry",
        "read_retries",
        "unrecoverable_reads",
        "rescued_pages",
    )

    def __init__(
        self,
        profile: FaultProfile,
        seed: int = 0,
        rng: "np.random.Generator | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        """``seed`` feeds a fresh ``numpy.random.default_rng`` unless an
        explicit ``rng`` Generator is supplied (the seeding convention in
        CONTRIBUTING.md)."""
        self.profile = profile
        self.seed = seed
        self.model: Optional[NandErrorModel] = (
            NandErrorModel(profile, rng) if rng is not None else None
        )
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self.flash: "FlashArray | None" = None
        self.bad_blocks: Optional[BadBlockManager] = None
        self._suspended = False
        self.program_fails = 0
        self.erase_fails = 0
        self.reads_with_retry = 0
        self.read_retries = 0
        self.unrecoverable_reads = 0
        self.rescued_pages = 0

    # ------------------------------------------------------------------
    def attach(self, flash: "FlashArray", tracer: "Tracer | None" = None) -> None:
        """Bind to a device: reserve factory spares, finalise the model."""
        if self.flash is not None:
            raise RuntimeError("fault injector already attached to a device")
        if tracer is not None:
            self.tracer = tracer
        self.flash = flash
        if self.model is None:
            self.model = NandErrorModel(
                self.profile,
                np.random.default_rng(self.seed),
                pe_cycle_limit=flash.config.pe_cycle_limit,
            )
        self.bad_blocks = BadBlockManager(flash, tracer=self.tracer)
        self.bad_blocks.reserve_spares(self.profile.spare_blocks_per_plane)

    # ------------------------------------------------------------------
    # Hooks (called by the FTL / GC behind ``if faults.enabled:``)
    # ------------------------------------------------------------------
    def on_program(
        self, ftl: "PageFTL", ppn: int, plane: int, now: float
    ) -> bool:
        """Decide and handle a program failure for the page at ``ppn``.

        Returns True when the program failed — the page is burned, the
        owning block retired (valid data rescued first) — and the caller
        must retry on a fresh allocation.  Returns False for success.
        """
        if self._suspended:
            return False
        flash = self.flash
        assert flash is not None and self.model is not None
        block = flash.geometry.block_of_ppn(ppn)
        if not self.model.program_fails(flash.erase_count[block]):
            return False
        self.program_fails += 1
        flash.mark_program_failed(ppn)
        if self.tracer.enabled:
            self.tracer.emit(FaultInjected(now, "program", plane, block))
        self._retire_with_rescue(ftl, plane, block, now, reason="program_fail")
        return True

    def on_erase(self, block: int, plane: int, now: float) -> bool:
        """Decide and handle an erase failure for a fully-migrated victim.

        Returns True when the erase failed: the block retires instead of
        rejoining the free list (the caller skips ``flash.erase``).
        """
        if self._suspended:
            return False
        flash = self.flash
        assert flash is not None and self.model is not None
        if not self.model.erase_fails(flash.erase_count[block]):
            return False
        self.erase_fails += 1
        if self.tracer.enabled:
            self.tracer.emit(FaultInjected(now, "erase", plane, block))
        assert self.bad_blocks is not None
        self.bad_blocks.retire(block, now, "erase_fail")
        return True

    def on_read(
        self,
        resources: "ResourceTimelines",
        lpn: int,
        ppn: int,
        plane: int,
        op: "OpTimes",
    ) -> "OpTimes":
        """Apply the ECC retry ladder to a completed host read.

        ``op`` is the clean read's timing; each needed retry schedules a
        slower re-read on the same plane, and the returned
        :class:`OpTimes` ends when the data finally came back (or the
        ladder gave up — unrecoverable, still accounted as the ladder's
        full duration).
        """
        if self._suspended:
            return op
        flash = self.flash
        assert flash is not None and self.model is not None
        block = flash.geometry.block_of_ppn(ppn)
        outcome = self.model.read_retries(flash.erase_count[block])
        if outcome == 0:
            return op
        ladder = self.profile.read_retry_latencies_ms
        rungs = len(ladder) if outcome is None else outcome
        t = op.end
        last = op
        for rung in range(rungs):
            last = resources.schedule_retry_read(plane, t, ladder[rung])
            t = last.end
        self.reads_with_retry += 1
        self.read_retries += rungs
        recovered = outcome is not None
        if not recovered:
            self.unrecoverable_reads += 1
        if self.tracer.enabled:
            self.tracer.emit(ReadRetry(t, lpn, plane, rungs, recovered))
        return last

    # ------------------------------------------------------------------
    def _retire_with_rescue(
        self, ftl: "PageFTL", plane: int, block: int, now: float, reason: str
    ) -> float:
        """Migrate ``block``'s valid pages out, then retire it.

        Runs suspended so rescue programs cannot recursively fail.  A
        :class:`~repro.ssd.flash.FlashOutOfSpace` raised while reopening
        the write point propagates (the controller's degraded-mode path
        catches it); the block then stays unretired but the failure was
        already counted.
        """
        flash = self.flash
        assert flash is not None
        self._suspended = True
        try:
            flash.detach_write_point(block)
            t = now
            for ppn in flash.valid_pages_of_block(block):
                op = ftl.resources.schedule_read(plane, t)
                op = ftl.relocate(ppn, plane, op.end)
                t = op.end
                self.rescued_pages += 1
            assert self.bad_blocks is not None
            self.bad_blocks.retire(block, t, reason)
            return t
        finally:
            self._suspended = False

    # ------------------------------------------------------------------
    def fill_report(self, report: DurabilityReport) -> None:
        """Copy the injector's accounting into a durability report."""
        report.fault_profile = self.profile.name
        report.fault_seed = self.seed
        report.program_fails = self.program_fails
        report.erase_fails = self.erase_fails
        report.reads_with_retry = self.reads_with_retry
        report.read_retries = self.read_retries
        report.unrecoverable_reads = self.unrecoverable_reads
        if self.bad_blocks is not None:
            report.blocks_retired = self.bad_blocks.blocks_retired
            report.spares_consumed = self.bad_blocks.spares_consumed
            report.spares_remaining = self.bad_blocks.total_spares_remaining()
        report.extra["rescued_pages"] = float(self.rescued_pages)
