"""Power-loss injection and mount-time recovery.

The paper's DRAM write buffer is exactly the data a power cut destroys:
every policy holds *dirty* pages in DRAM (the write buffer never caches
clean reads), so at the loss instant the durability exposure equals the
cache occupancy — and cache-management policy directly decides how much
data dies.  That makes lost-writes-at-power-loss a first-class metric
for comparing Req-block against LRU/BPLRU/VBBMS.

Model (see docs/fault_injection.md):

1. **Loss** — the cache is drained *without* writing: the policy's
   ``flush_all`` yields the dirty census; an optional capacitor budget
   (``capacitor_pages``, modelling power-loss-protection capacitors)
   flushes the first N pages of that batch to flash before the rails
   fall; the rest are lost.
2. **Mount** — the FTL mapping is rebuilt by scanning every written
   physical page's OOB area (LPN stamps); the modeled scan time
   (``mount_base_ms + mount_scan_ms_per_page × written pages``) stalls
   every channel and plane timeline, so post-recovery requests queue
   behind the mount exactly like a real remount.
3. **Verification** — the rebuilt mapping must be a bijection onto the
   VALID flash pages (:meth:`PageFTL.rebuild_mapping` asserts this);
   the invariant checker re-validates the whole device on the
   :class:`~repro.obs.events.RecoveryComplete` event.

Capacitor flushes run through the normal FTL write path and may trigger
GC or even degraded mode (a dying, full device can lose *more* than the
capacitor promised) — a deliberate, documented simplification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults.profile import FaultProfile
from repro.faults.report import PowerLossReport
from repro.obs.events import PowerLoss, RecoveryComplete
from repro.ssd.flash import FlashOutOfSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.controller import SSDController

__all__ = ["inject_power_loss"]

#: Lost LPNs retained in the report for diagnostics.
LOST_LPN_SAMPLE = 16


def inject_power_loss(
    controller: "SSDController",
    now: float,
    at_request: int = -1,
    capacitor_pages: int = 0,
    profile: Optional[FaultProfile] = None,
) -> PowerLossReport:
    """Cut power at simulated time ``now``; returns the loss/recovery report.

    ``capacitor_pages`` is the power-loss-protection budget: how many
    dirty pages the hold-up capacitors can push to flash after the host
    rails fail.  The controller's tracer (if any) receives ``PowerLoss``
    and ``RecoveryComplete`` events; the policy comes back empty and the
    device timelines stall for the mount duration.
    """
    mount = profile if profile is not None else FaultProfile()
    policy = controller.policy
    tracer = controller.tracer

    # -- loss: census the dirty data, spend the capacitor budget -------
    dirty = policy.occupancy()
    batch = policy.flush_all()
    assert len(batch.lpns) == dirty, (
        f"flush_all returned {len(batch.lpns)} pages for occupancy {dirty}"
    )
    saved = 0
    if capacitor_pages > 0:
        for lpn in batch.lpns[:capacitor_pages]:
            try:
                controller.ftl.write_page(lpn, now)
            except FlashOutOfSpace as exc:
                controller.enter_degraded(str(exc), now)
                break
            saved += 1
        controller.flushed_pages += saved
    lost_lpns = batch.lpns[saved:]
    report = PowerLossReport(
        at_request=at_request,
        at_time_ms=now,
        dirty_pages=dirty,
        saved_pages=saved,
        lost_pages=len(lost_lpns),
        lost_lpns_sample=tuple(lost_lpns[:LOST_LPN_SAMPLE]),
    )
    if tracer.enabled:
        tracer.emit(PowerLoss(now, dirty, saved, report.lost_pages))

    # -- mount: OOB scan rebuilds the mapping, stalling the device -----
    controller.ftl.on_power_loss()
    report.scanned_pages = controller.flash.written_pages()
    report.recovery_ms = (
        mount.mount_base_ms + mount.mount_scan_ms_per_page * report.scanned_pages
    )
    report.remapped_pages = controller.ftl.rebuild_mapping()
    end = now + report.recovery_ms
    controller.resources.stall_until(end)
    if tracer.enabled:
        tracer.emit(
            RecoveryComplete(
                end, report.recovery_ms, report.scanned_pages, report.remapped_pages
            )
        )
    return report
