"""Fast binary trace storage (numpy ``.npz``).

Regenerating a scaled workload takes ~1 s, but a full-length paper
workload (4.2 M requests for proj_0) takes tens of seconds per run —
and full-scale sweeps replay each trace dozens of times.  This module
round-trips any :class:`Trace` through a compact columnar ``.npz``
(four aligned arrays: time, op, lpn, npages), loading in milliseconds.

``cached_workload`` wraps the named paper workloads with a disk cache
keyed by (name, scale).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.model import IORequest, OpType, Trace
from repro.traces.workloads import get_config
from repro.traces.synthetic import generate_trace

__all__ = ["save_trace", "load_trace", "cached_workload"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = len(trace)
    times = np.empty(n, dtype=np.float64)
    ops = np.empty(n, dtype=np.uint8)
    lpns = np.empty(n, dtype=np.int64)
    npages = np.empty(n, dtype=np.int32)
    for i, r in enumerate(trace):
        times[i] = r.time
        ops[i] = 1 if r.is_write else 0
        lpns[i] = r.lpn
        npages[i] = r.npages
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        name=np.str_(trace.name),
        time=times,
        op=ops,
        lpn=lpns,
        npages=npages,
    )


def load_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        name = str(data["name"])
        times = data["time"]
        ops = data["op"]
        lpns = data["lpn"]
        npages = data["npages"]
    requests = [
        IORequest(
            time=float(times[i]),
            op=OpType.WRITE if ops[i] else OpType.READ,
            lpn=int(lpns[i]),
            npages=int(npages[i]),
        )
        for i in range(len(times))
    ]
    return Trace(name, requests)


def cached_workload(
    name: str, scale: float, cache_dir: PathLike = ".trace-cache"
) -> Trace:
    """A named paper workload, memoised on disk.

    The first call generates and saves; later calls (including from
    other processes) load the ``.npz``.  The file name encodes the
    generator seed via (name, scale), so changing the workload configs
    in :mod:`repro.traces.workloads` requires clearing the cache
    directory.
    """
    cfg = get_config(name, scale)
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{name}-s{scale:.8f}-n{cfg.n_requests}.npz"
    if path.exists():
        return load_trace(path)
    trace = generate_trace(cfg)
    save_trace(trace, path)
    return trace
