"""Trace transforms: slicing, time-scaling, filtering, merging, remapping.

Utilities for shaping traces before replay — the operations storage
papers routinely apply (time-compress a trace to raise load, merge two
volumes onto one device, strip reads for a pure write-buffer study,
offset a volume's address range).  All transforms are pure: they return
new :class:`Trace` objects and never mutate their inputs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.traces.model import IORequest, OpType, Trace
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "time_scale",
    "slice_time",
    "filter_ops",
    "remap_addresses",
    "merge_traces",
    "interleave_traces",
    "truncate_requests",
    "split_large_requests",
]


def time_scale(trace: Trace, factor: float, name: str | None = None) -> Trace:
    """Multiply every arrival time by ``factor``.

    ``factor < 1`` compresses the trace (higher load, more queueing);
    ``factor > 1`` stretches it.  Request contents are unchanged.
    """
    require_positive(factor, "factor")
    return Trace(
        name or f"{trace.name}*t{factor:g}",
        [
            IORequest(r.time * factor, r.op, r.lpn, r.npages)
            for r in trace
        ],
    )


def slice_time(
    trace: Trace, start_ms: float, end_ms: float, rebase: bool = True
) -> Trace:
    """Requests with ``start_ms <= time < end_ms``; times rebased to 0."""
    require_non_negative(start_ms, "start_ms")
    if end_ms <= start_ms:
        raise ValueError(f"empty window: [{start_ms}, {end_ms})")
    picked = [r for r in trace if start_ms <= r.time < end_ms]
    if rebase:
        picked = [
            IORequest(r.time - start_ms, r.op, r.lpn, r.npages) for r in picked
        ]
    return Trace(f"{trace.name}[{start_ms:g}:{end_ms:g}ms]", picked)


def filter_ops(
    trace: Trace,
    keep: Callable[[IORequest], bool],
    name: str | None = None,
) -> Trace:
    """Keep only requests for which ``keep`` returns True.

    Common filters::

        filter_ops(t, lambda r: r.is_write)          # writes only
        filter_ops(t, lambda r: r.npages <= 4)       # small requests
    """
    return Trace(name or f"{trace.name}|filtered", [r for r in trace if keep(r)])


def remap_addresses(
    trace: Trace, offset_pages: int, name: str | None = None
) -> Trace:
    """Shift every request's LPN by ``offset_pages`` (must stay >= 0)."""
    if trace.requests and trace.requests[0].lpn + offset_pages < 0:
        pass  # per-request check below raises precisely
    out: List[IORequest] = []
    for r in trace:
        new_lpn = r.lpn + offset_pages
        if new_lpn < 0:
            raise ValueError(
                f"remap would move lpn {r.lpn} below zero "
                f"(offset {offset_pages})"
            )
        out.append(IORequest(r.time, r.op, new_lpn, r.npages))
    return Trace(name or f"{trace.name}+{offset_pages}p", out)


def merge_traces(
    traces: Sequence[Trace],
    name: str = "merged",
    disjoint_addresses: bool = True,
) -> Trace:
    """Interleave several traces by arrival time onto one device.

    With ``disjoint_addresses`` (default) each input trace is shifted
    into its own address region (sized to the largest input footprint),
    modelling separate volumes sharing an SSD; otherwise addresses are
    taken verbatim (shared namespace).
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    shifted: List[Trace] = []
    if disjoint_addresses:
        region = max(t.max_lpn() + 1 for t in traces)
        for i, t in enumerate(traces):
            shifted.append(remap_addresses(t, i * region) if i else t)
    else:
        shifted = list(traces)
    merged = sorted(
        (r for t in shifted for r in t), key=lambda r: r.time
    )
    return Trace(name, merged)


def interleave_traces(
    streams: Sequence[Trace],
    zone_pages: int | None = None,
    name: str = "interleaved",
) -> Trace:
    """Deterministically interleave per-tenant streams onto one device.

    The multi-tenant variant of :func:`merge_traces`: stream ``i`` is a
    tenant's private request sequence, and with ``zone_pages`` set the
    stream is shifted into the disjoint LBA zone
    ``[i * zone_pages, (i + 1) * zone_pages)`` — the namespace layout
    :class:`repro.traces.tenants.TenantMap` resolves tenants from.
    Unlike :func:`merge_traces` (which *derives* a region size), the
    zone size is a caller-declared contract: a stream whose footprint
    does not fit its zone raises instead of silently colliding with its
    neighbour's addresses.

    Requests are ordered by arrival time; ties are broken by stream
    index and then by position within the stream (the sort is stable
    over the stream-major concatenation), so the interleaving is fully
    deterministic — no RNG, no dependence on dict/set ordering, and
    therefore identical under any multiprocessing start method.  Empty
    streams are legal (an idle tenant contributes nothing); an empty
    *list* of streams is not.
    """
    if not streams:
        raise ValueError("interleave_traces needs at least one stream")
    shifted: List[Trace] = []
    if zone_pages is not None:
        require_positive(zone_pages, "zone_pages")
        for i, t in enumerate(streams):
            end = t.max_lpn() + 1 if len(t) else 0
            if end > zone_pages:
                raise ValueError(
                    f"stream {i} ({t.name!r}) spans {end} pages, "
                    f"overflowing its {zone_pages}-page tenant zone"
                )
            shifted.append(remap_addresses(t, i * zone_pages) if i else t)
    else:
        shifted = list(streams)
    merged = sorted(
        (r for t in shifted for r in t), key=lambda r: r.time
    )
    return Trace(name, merged)


def truncate_requests(trace: Trace, n: int) -> Trace:
    """The first ``n`` requests (alias of ``Trace.head`` with checks)."""
    require_positive(n, "n")
    return trace.head(n)


def split_large_requests(
    trace: Trace, max_pages: int, name: str | None = None
) -> Trace:
    """Split requests larger than ``max_pages`` into chained chunks.

    Hosts bound the transfer size per command (NVMe's MDTS); a 1 MB
    write reaches the device as several maximum-sized commands.  Chunks
    keep the parent's arrival time (they are queued back-to-back), so
    the page stream and its timing envelope are preserved while the
    *request-size distribution* the cache sees changes — which is
    exactly what a request-granularity policy like Req-block is
    sensitive to.  Useful for studying how the MDTS setting shifts the
    small/large boundary.
    """
    require_positive(max_pages, "max_pages")
    out: List[IORequest] = []
    for r in trace:
        if r.npages <= max_pages:
            out.append(r)
            continue
        lpn = r.lpn
        remaining = r.npages
        while remaining > 0:
            chunk = min(max_pages, remaining)
            out.append(IORequest(r.time, r.op, lpn, chunk))
            lpn += chunk
            remaining -= chunk
    return Trace(name or f"{trace.name}|mdts{max_pages}", out)
