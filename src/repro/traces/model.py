"""I/O request model shared by traces, cache policies and the SSD simulator.

The unit of addressing throughout the package is the **logical page
number (LPN)**: traces expressed in 512-byte sectors (MSR format) are
converted to 4 KB pages at parse time, matching the paper's SSDsim
configuration (Table 1).  A request covers the contiguous LPN range
``[lpn, lpn + npages)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["OpType", "IORequest", "Trace", "PAGE_SIZE_BYTES", "SECTOR_SIZE_BYTES"]

PAGE_SIZE_BYTES = 4096
SECTOR_SIZE_BYTES = 512


class OpType(enum.Enum):
    """Request direction as seen by the SSD."""

    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class IORequest:
    """One block-level I/O request.

    Attributes
    ----------
    time:
        Arrival time in milliseconds from trace start.
    op:
        :class:`OpType.READ` or :class:`OpType.WRITE`.
    lpn:
        First logical page number touched.
    npages:
        Number of 4 KB pages covered (the paper's "request size").
    """

    time: float
    op: OpType
    lpn: int
    npages: int

    def __post_init__(self) -> None:
        require_non_negative(self.time, "time")
        require_non_negative(self.lpn, "lpn")
        require_positive(self.npages, "npages")

    @property
    def is_write(self) -> bool:
        """Whether this is a write request."""
        return self.op is OpType.WRITE

    @property
    def is_read(self) -> bool:
        """Whether this is a read request."""
        return self.op is OpType.READ

    @property
    def size_bytes(self) -> int:
        """Request size in bytes (npages x 4 KB)."""
        return self.npages * PAGE_SIZE_BYTES

    @property
    def size_kb(self) -> float:
        """Request size in KB (the unit of the paper's Table 2)."""
        return self.size_bytes / 1024.0

    @property
    def end_lpn(self) -> int:
        """One past the last LPN touched."""
        return self.lpn + self.npages

    def pages(self) -> range:
        """The LPNs covered by this request, in ascending order."""
        return range(self.lpn, self.lpn + self.npages)

    @classmethod
    def from_sectors(
        cls, time: float, op: OpType, sector: int, nbytes: int
    ) -> "IORequest":
        """Build a page-aligned request from a sector address and byte count.

        The covered page range is the smallest page-aligned range that
        contains ``[sector * 512, sector * 512 + nbytes)`` — the same
        rounding SSD firmware applies for read-modify-write.
        """
        require_positive(nbytes, "nbytes")
        start_byte = sector * SECTOR_SIZE_BYTES
        end_byte = start_byte + nbytes
        first = start_byte // PAGE_SIZE_BYTES
        last = (end_byte + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES
        return cls(time=time, op=op, lpn=first, npages=last - first)


class Trace:
    """An ordered sequence of :class:`IORequest` plus identity metadata.

    Thin wrapper over a list so replay code can iterate it repeatedly,
    slice it, and attach a name for reporting.  Requests must be sorted
    by arrival time (enforced on construction).
    """

    __slots__ = ("name", "_requests")

    def __init__(self, name: str, requests: Sequence[IORequest]) -> None:
        self.name = name
        reqs = list(requests)
        for a, b in zip(reqs, reqs[1:]):
            if b.time < a.time:
                raise ValueError(
                    f"trace {name!r} is not sorted by time "
                    f"({b.time} after {a.time})"
                )
        self._requests = reqs

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def __getitem__(self, idx: int) -> IORequest:
        return self._requests[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Trace {self.name!r} n={len(self._requests)}>"

    @property
    def requests(self) -> List[IORequest]:
        """The underlying request list (do not mutate)."""
        return self._requests

    def head(self, n: int) -> "Trace":
        """A new trace containing only the first ``n`` requests."""
        return Trace(f"{self.name}[:{n}]", self._requests[:n])

    def writes(self) -> Iterable[IORequest]:
        """The write requests, in order."""
        return (r for r in self._requests if r.is_write)

    def reads(self) -> Iterable[IORequest]:
        """The read requests, in order."""
        return (r for r in self._requests if r.is_read)

    def footprint_pages(self) -> int:
        """Number of distinct LPNs touched by the whole trace."""
        seen: set[int] = set()
        for r in self._requests:
            seen.update(r.pages())
        return len(seen)

    def max_lpn(self) -> int:
        """Largest LPN touched (0 for an empty trace)."""
        return max((r.end_lpn - 1 for r in self._requests), default=0)
