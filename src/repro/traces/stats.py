"""Trace characterisation — the columns of the paper's Table 2.

For a given trace this module computes:

* request count;
* write ratio (fraction of requests that are writes);
* mean write size in KB;
* **Frequent R** — the fraction of distinct page addresses that are
  accessed at least ``FREQUENT_THRESHOLD`` (= 3) times, which the paper
  uses as its locality indicator;
* **Frequent R (Wr)** — among those frequent addresses, the fraction
  whose accesses are predominantly writes (the paper's "(Wr) implies the
  percent of write addresses in which").

It also computes the size-class statistics behind Figures 2 and 3:
the small/large boundary is the *mean request size of the trace*
(footnote 1 of the paper).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.traces.model import IORequest, Trace

__all__ = ["TraceSpec", "characterize", "mean_request_pages", "FREQUENT_THRESHOLD"]

#: An address is "frequent" when requested at least this many times
#: (paper, Table 2 caption: "the ratio of addresses requested not less
#: than 3").
FREQUENT_THRESHOLD = 3


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """One row of Table 2."""

    name: str
    n_requests: int
    write_ratio: float
    mean_write_size_kb: float
    frequent_ratio: float
    frequent_write_ratio: float
    footprint_pages: int

    def row(self) -> Tuple[str, int, str, str, str]:
        """Formatted cells matching Table 2's layout."""
        return (
            self.name,
            self.n_requests,
            f"{self.write_ratio * 100:.1f}%",
            f"{self.mean_write_size_kb:.1f}KB",
            f"{self.frequent_ratio * 100:.1f}%({self.frequent_write_ratio * 100:.1f}%)",
        )


def characterize(trace: Trace) -> TraceSpec:
    """Compute the Table-2 statistics for ``trace``.

    Single pass over the trace; page-granularity access counting uses a
    pair of flat counters keyed by LPN.
    """
    n_requests = len(trace)
    n_writes = 0
    write_pages_total = 0
    access_count: Counter[int] = Counter()
    write_count: Counter[int] = Counter()

    for r in trace:
        if r.is_write:
            n_writes += 1
            write_pages_total += r.npages
        for lpn in r.pages():
            access_count[lpn] += 1
            if r.is_write:
                write_count[lpn] += 1

    n_addrs = len(access_count)
    frequent = [lpn for lpn, c in access_count.items() if c >= FREQUENT_THRESHOLD]
    n_frequent = len(frequent)
    # "Write addresses" among the frequent set: addresses where writes
    # form at least half of the accesses.
    n_frequent_wr = sum(
        1 for lpn in frequent if 2 * write_count[lpn] >= access_count[lpn]
    )

    return TraceSpec(
        name=trace.name,
        n_requests=n_requests,
        write_ratio=n_writes / n_requests if n_requests else 0.0,
        mean_write_size_kb=(
            write_pages_total * 4096 / 1024 / n_writes if n_writes else 0.0
        ),
        frequent_ratio=n_frequent / n_addrs if n_addrs else 0.0,
        frequent_write_ratio=n_frequent_wr / n_frequent if n_frequent else 0.0,
        footprint_pages=n_addrs,
    )


def mean_request_pages(trace: Trace, writes_only: bool = True) -> float:
    """Mean request size in pages — the paper's small/large boundary.

    Footnote 1: "We refer a small request while its size is not larger
    than the average size of all requests of selected traces".  The
    motivation figures bucket *write* requests, so the default averages
    over writes.
    """
    total = 0
    count = 0
    for r in trace:
        if writes_only and not r.is_write:
            continue
        total += r.npages
        count += 1
    return total / count if count else 0.0


def request_size_histogram(trace: Trace, writes_only: bool = True) -> Dict[int, int]:
    """Count of requests per size (pages) — used by the Fig. 2 analysis."""
    hist: Dict[int, int] = {}
    for r in trace:
        if writes_only and not r.is_write:
            continue
        hist[r.npages] = hist.get(r.npages, 0) + 1
    return hist
