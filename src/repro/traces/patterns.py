"""Classic micro-pattern workloads: sequential, random, zipf, mixed.

The six paper workloads model real volumes; these generators produce
the *textbook* access patterns papers use for microbenchmarks and
sanity checks (a pure sequential writer should make BPLRU look good, a
uniform-random writer should defeat every policy equally, ...).  Each
returns an ordinary :class:`Trace` and is fully determined by its
arguments.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.traces.model import IORequest, OpType, Trace
from repro.utils.rng import resolve_rng
from repro.utils.validation import require_in_range, require_positive

__all__ = [
    "sequential_writes",
    "random_writes",
    "zipf_writes",
    "mixed_pattern",
]

_GAP_MS = 0.5


def _times(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.float64) * _GAP_MS


def sequential_writes(
    n_requests: int,
    req_pages: int = 8,
    start_lpn: int = 0,
    name: str = "seq-writes",
) -> Trace:
    """Back-to-back sequential writes (the FAB/BPLRU sweet spot)."""
    require_positive(n_requests, "n_requests")
    require_positive(req_pages, "req_pages")
    times = _times(n_requests)
    reqs = [
        IORequest(times[i], OpType.WRITE, start_lpn + i * req_pages, req_pages)
        for i in range(n_requests)
    ]
    return Trace(name, reqs)


def random_writes(
    n_requests: int,
    span_pages: int,
    req_pages: int = 1,
    seed: int = 0,
    name: str = "rand-writes",
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """Uniform random single/multi-page writes over ``span_pages``."""
    require_positive(n_requests, "n_requests")
    require_positive(span_pages, "span_pages")
    rng = resolve_rng(rng, seed)
    lpns = rng.integers(0, max(1, span_pages - req_pages + 1), size=n_requests)
    times = _times(n_requests)
    reqs = [
        IORequest(times[i], OpType.WRITE, int(lpns[i]), req_pages)
        for i in range(n_requests)
    ]
    return Trace(name, reqs)


def zipf_writes(
    n_requests: int,
    n_objects: int,
    theta: float = 1.0,
    req_pages: int = 1,
    seed: int = 0,
    name: str = "zipf-writes",
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """Zipf-popular writes over ``n_objects`` aligned extents."""
    require_positive(n_requests, "n_requests")
    require_positive(n_objects, "n_objects")
    require_in_range(theta, "theta", 0.0, 4.0)
    rng = resolve_rng(rng, seed)
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    w = ranks**-theta
    w /= w.sum()
    objs = rng.choice(n_objects, size=n_requests, p=w)
    perm = rng.permutation(n_objects)
    times = _times(n_requests)
    reqs = [
        IORequest(times[i], OpType.WRITE, int(perm[objs[i]]) * req_pages, req_pages)
        for i in range(n_requests)
    ]
    return Trace(name, reqs)


def mixed_pattern(
    n_requests: int,
    hot_objects: int = 64,
    hot_pages: int = 2,
    stream_pages: int = 32,
    hot_fraction: float = 0.6,
    read_fraction: float = 0.3,
    seed: int = 0,
    name: str = "mixed",
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """The paper's motif in miniature: hot small writes + cold streams.

    ``hot_fraction`` of writes hit a Zipf-hot set of small extents; the
    rest stream sequentially.  ``read_fraction`` of requests re-read a
    recent hot extent.  Useful as a deterministic fixture where the full
    synthetic generator would be overkill.
    """
    require_positive(n_requests, "n_requests")
    require_in_range(hot_fraction, "hot_fraction", 0.0, 1.0)
    require_in_range(read_fraction, "read_fraction", 0.0, 1.0)
    rng = resolve_rng(rng, seed)
    ranks = np.arange(1, hot_objects + 1, dtype=np.float64)
    w = ranks**-1.1
    w /= w.sum()
    hot_base = 0
    stream_base = hot_objects * hot_pages
    cursor = stream_base
    times = _times(n_requests)
    reqs: List[IORequest] = []
    recent: List[int] = []
    for i in range(n_requests):
        if rng.random() < read_fraction and recent:
            lpn = recent[int(rng.integers(0, len(recent)))]
            reqs.append(IORequest(times[i], OpType.READ, lpn, hot_pages))
        elif rng.random() < hot_fraction:
            obj = int(rng.choice(hot_objects, p=w))
            lpn = hot_base + obj * hot_pages
            reqs.append(IORequest(times[i], OpType.WRITE, lpn, hot_pages))
            recent.append(lpn)
            if len(recent) > 128:
                recent.pop(0)
        else:
            reqs.append(IORequest(times[i], OpType.WRITE, cursor, stream_pages))
            cursor += stream_pages
    return Trace(name, reqs)
