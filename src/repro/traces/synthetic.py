"""Synthetic block-trace generator calibrated to the paper's workloads.

The real MSR-Cambridge / VDI traces are not redistributable, so the
reproduction generates synthetic traces whose *mechanistically relevant*
properties match Table 2 and Figures 2/3 of the paper:

* request count, write ratio and mean write size (Table 2);
* **size-dependent temporal locality** — small write requests repeatedly
  target a compact hot set of request-aligned "slots", while large write
  requests mostly stream sequentially through a cold region and are
  rarely re-accessed (Observations 1 and 2);
* partial re-reads of large extents, which exercise Req-block's
  split-to-DRL path;
* bursty arrivals, so channel queueing (and hence the response-time
  comparison of Figure 8) is meaningful.

The generator is a small Markov model driven by a seeded
:class:`numpy.random.Generator`; traces are bit-reproducible.

Address-space layout (in pages)::

    [0 ............ hot_span) [hot_span ....... hot_span + large_span)
        small-write slots           large-write streaming region

Small writes pick a slot by a Zipf(``zipf_theta``) rank through a fixed
random permutation (so hot slots are spatially scattered, as on a real
volume), and write the whole slot extent.  Large writes either continue
one of ``n_streams`` sequential streams or, with probability
``large_rewrite_prob``, rewrite a recently written large extent.  Reads
target recently written data with probability ``read_recent_prob``
(biased toward small-write data by ``read_small_bias``), otherwise they
hit a cold uniformly random address.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.traces.model import IORequest, OpType, Trace
from repro.utils.rng import resolve_rng
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = ["SyntheticConfig", "SyntheticTraceGenerator", "generate_trace"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic workload.

    Size parameters are in 4 KB pages.  ``small_size_max`` doubles as the
    slot stride, so repeated writes to a slot cover identical extents.
    """

    name: str
    n_requests: int
    seed: int
    write_ratio: float

    # -- request-size mixture ------------------------------------------------
    small_write_fraction: float  # fraction of WRITE requests that are small
    small_size_mean: float  # mean pages of a small write (geometric-ish)
    small_size_max: int  # small writes are 1..small_size_max pages
    large_size_mean: float  # mean pages of a large write
    large_size_max: int  # hard cap on large write size

    # -- locality structure --------------------------------------------------
    n_hot_slots: int  # number of small-write slots
    zipf_theta: float  # skew of slot popularity (0 = uniform)
    large_span_pages: int  # size of the streaming region
    n_streams: int = 4  # concurrent sequential write streams
    large_rewrite_prob: float = 0.15  # P(large write rewrites a recent extent)
    recent_large_window: int = 64  # how many recent large extents to remember

    # -- read behaviour -------------------------------------------------------
    read_recent_prob: float = 0.7  # P(read targets recently written data)
    read_small_bias: float = 0.8  # among those, P(target small-write slot)
    recent_small_window: int = 512
    #: P(a small-extent read touches a single page rather than the whole
    #: extent).  Partial re-access is what makes whole-block promotion
    #: (delta > 1) pay off: the untouched sibling pages ride along into
    #: SRL and hit later (the paper's Fig. 7 effect).
    small_partial_read_prob: float = 0.5

    # -- arrival process -------------------------------------------------------
    mean_burst_len: float = 8.0  # requests per burst
    intra_burst_gap_ms: float = 0.05
    inter_burst_gap_ms: float = 2.0
    #: When set, ``inter_burst_gap_ms`` is overridden so the long-run
    #: page arrival rate approximates this value.  The paper's device
    #: programs ~7.8 pages/ms across its 16 chips; targeting ~60% of
    #: that keeps channels loaded (so eviction efficiency shows up in
    #: response times, Fig. 8) without unbounded queueing.
    target_pages_per_ms: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive(self.n_requests, "n_requests")
        require_in_range(self.write_ratio, "write_ratio", 0.0, 1.0)
        require_in_range(self.small_write_fraction, "small_write_fraction", 0.0, 1.0)
        require_positive(self.small_size_mean, "small_size_mean")
        require_positive(self.small_size_max, "small_size_max")
        require_positive(self.large_size_mean, "large_size_mean")
        require_positive(self.large_size_max, "large_size_max")
        if self.large_size_mean <= self.small_size_max:
            raise ValueError(
                "large_size_mean must exceed small_size_max so that the "
                "small/large size classes are actually separated"
            )
        require_positive(self.n_hot_slots, "n_hot_slots")
        require_non_negative(self.zipf_theta, "zipf_theta")
        require_positive(self.large_span_pages, "large_span_pages")
        require_positive(self.n_streams, "n_streams")
        require_in_range(self.large_rewrite_prob, "large_rewrite_prob", 0.0, 1.0)
        require_in_range(self.read_recent_prob, "read_recent_prob", 0.0, 1.0)
        require_in_range(self.read_small_bias, "read_small_bias", 0.0, 1.0)
        require_positive(self.mean_burst_len, "mean_burst_len")
        require_non_negative(self.intra_burst_gap_ms, "intra_burst_gap_ms")
        require_non_negative(self.inter_burst_gap_ms, "inter_burst_gap_ms")

    # ------------------------------------------------------------------
    @property
    def mean_read_pages(self) -> float:
        """Rough expected pages per read request (for rate calibration):
        reads mostly target small-write extents or small sub-extents of
        large writes, so their mean tracks the small-write size."""
        return self.small_size_mean + 0.5

    @property
    def mean_request_pages(self) -> float:
        """Expected pages per request (reads and writes combined)."""
        w = self.write_ratio
        return w * self.mean_write_pages + (1.0 - w) * self.mean_read_pages

    @property
    def effective_inter_burst_gap_ms(self) -> float:
        """The inter-burst gap actually used by the generator.

        With ``target_pages_per_ms`` set, solves
        ``rate = burst_len * pages_per_req / (burst_len * intra + inter)``
        for ``inter`` (clamped non-negative).
        """
        if self.target_pages_per_ms is None:
            return self.inter_burst_gap_ms
        pages_per_burst = self.mean_burst_len * self.mean_request_pages
        cycle = pages_per_burst / self.target_pages_per_ms
        return max(0.0, cycle - self.mean_burst_len * self.intra_burst_gap_ms)

    @property
    def hot_span_pages(self) -> int:
        """Pages reserved for the slot region (slots are stride-aligned)."""
        return self.n_hot_slots * self.small_size_max

    @property
    def mean_write_pages(self) -> float:
        """Expected pages per write request under this mixture."""
        return (
            self.small_write_fraction * self.small_size_mean
            + (1.0 - self.small_write_fraction) * self.large_size_mean
        )

    def scaled(self, factor: float) -> "SyntheticConfig":
        """A copy with request count and footprint scaled by ``factor``.

        Request sizes and probabilities are preserved, so the workload's
        per-request character is unchanged; only its length and address
        footprint shrink/grow together (keeping cache:footprint ratios
        meaningful when the DRAM cache is scaled by the same factor).
        """
        require_positive(factor, "factor")
        return replace(
            self,
            n_requests=max(1, int(round(self.n_requests * factor))),
            n_hot_slots=max(8, int(round(self.n_hot_slots * factor))),
            large_span_pages=max(1024, int(round(self.large_span_pages * factor))),
        )


def _zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Normalised generalized-Zipf weights 1/k^theta for k = 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-theta
    return w / w.sum()


class SyntheticTraceGenerator:
    """Generates a :class:`Trace` from a :class:`SyntheticConfig`.

    Deterministic for a given config (seed included), which the
    replay-determinism tests rely on.
    """

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def generate(self, rng: "np.random.Generator | None" = None) -> Trace:
        """Produce the trace (deterministic for this config).

        An explicit ``rng`` overrides the config's seed (the seeding
        convention in CONTRIBUTING.md); callers sharing a Generator
        must account for the draws this consumes.
        """
        cfg = self.config
        rng = resolve_rng(rng, cfg.seed)
        n = cfg.n_requests

        # Pre-draw everything vectorisable; the loop only does the
        # state-dependent address selection.
        is_write = rng.random(n) < cfg.write_ratio
        is_small = rng.random(n) < cfg.small_write_fraction
        # Small sizes: shifted geometric clipped to [1, small_size_max].
        p_small = 1.0 / cfg.small_size_mean
        small_sizes = np.minimum(
            rng.geometric(p=min(1.0, p_small), size=n), cfg.small_size_max
        )
        # Large sizes: shifted geometric above the small cap.
        large_extra_mean = max(1.0, cfg.large_size_mean - cfg.small_size_max)
        large_sizes = np.minimum(
            cfg.small_size_max + rng.geometric(p=1.0 / large_extra_mean, size=n),
            cfg.large_size_max,
        )
        slot_probs = _zipf_probabilities(cfg.n_hot_slots, cfg.zipf_theta)
        slot_ranks = rng.choice(cfg.n_hot_slots, size=n, p=slot_probs)
        slot_perm = rng.permutation(cfg.n_hot_slots)
        u_rewrite = rng.random(n)
        u_read_recent = rng.random(n)
        u_read_small = rng.random(n)
        u_misc = rng.random(n)
        stream_pick = rng.integers(0, cfg.n_streams, size=n)
        recent_pick = rng.integers(0, 1 << 30, size=n)

        # Arrival process: bursts of geometric length.
        times = self._arrival_times(rng, n)

        hot_base = 0
        large_base = cfg.hot_span_pages
        stream_cursors = [
            large_base + int(rng.integers(0, cfg.large_span_pages))
            for _ in range(cfg.n_streams)
        ]
        recent_large: Deque[Tuple[int, int]] = deque(maxlen=cfg.recent_large_window)
        recent_small: Deque[Tuple[int, int]] = deque(maxlen=cfg.recent_small_window)
        device_span = large_base + cfg.large_span_pages

        requests: List[IORequest] = []
        append = requests.append
        for i in range(n):
            if is_write[i]:
                if is_small[i]:
                    lpn, npages = self._small_write(
                        cfg,
                        hot_base,
                        slot_perm,
                        int(slot_ranks[i]),
                        int(small_sizes[i]),
                    )
                    recent_small.append((lpn, npages))
                else:
                    lpn, npages = self._large_write(
                        cfg,
                        large_base,
                        stream_cursors,
                        int(stream_pick[i]),
                        int(large_sizes[i]),
                        recent_large,
                        float(u_rewrite[i]),
                        int(recent_pick[i]),
                    )
                    recent_large.append((lpn, npages))
                append(IORequest(times[i], OpType.WRITE, lpn, npages))
            else:
                lpn, npages = self._read(
                    cfg,
                    recent_small,
                    recent_large,
                    device_span,
                    float(u_read_recent[i]),
                    float(u_read_small[i]),
                    float(u_misc[i]),
                    int(recent_pick[i]),
                    int(small_sizes[i]),
                )
                append(IORequest(times[i], OpType.READ, lpn, npages))
        return Trace(cfg.name, requests)

    # ------------------------------------------------------------------
    def _arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.config
        burst_end = rng.random(n) < (1.0 / cfg.mean_burst_len)
        gaps = np.where(
            burst_end,
            rng.exponential(cfg.effective_inter_burst_gap_ms, size=n),
            cfg.intra_burst_gap_ms,
        )
        gaps[0] = 0.0
        return np.cumsum(gaps)

    @staticmethod
    def _small_write(
        cfg: SyntheticConfig,
        hot_base: int,
        slot_perm: np.ndarray,
        rank: int,
        size: int,
    ) -> Tuple[int, int]:
        slot = int(slot_perm[rank])
        lpn = hot_base + slot * cfg.small_size_max
        return lpn, size

    @staticmethod
    def _large_write(
        cfg: SyntheticConfig,
        large_base: int,
        cursors: List[int],
        stream: int,
        size: int,
        recent_large: Deque[Tuple[int, int]],
        u_rewrite: float,
        pick: int,
    ) -> Tuple[int, int]:
        if recent_large and u_rewrite < cfg.large_rewrite_prob:
            return recent_large[pick % len(recent_large)]
        lpn = cursors[stream]
        end = large_base + cfg.large_span_pages
        if lpn + size > end:
            lpn = large_base
        cursors[stream] = lpn + size
        return lpn, size

    @staticmethod
    def _read(
        cfg: SyntheticConfig,
        recent_small: Deque[Tuple[int, int]],
        recent_large: Deque[Tuple[int, int]],
        device_span: int,
        u_recent: float,
        u_small: float,
        u_frac: float,
        pick: int,
        fallback_size: int,
    ) -> Tuple[int, int]:
        if u_recent < cfg.read_recent_prob:
            if recent_small and (u_small < cfg.read_small_bias or not recent_large):
                lpn, npages = recent_small[pick % len(recent_small)]
                if npages > 1 and u_frac < cfg.small_partial_read_prob:
                    # Touch one page of the extent; siblings stay cold
                    # until a later read (exercises delta's protection).
                    return lpn + (pick % npages), 1
                return lpn, npages
            if recent_large:
                # Partial re-read of a large extent: this is what drives
                # Req-block's split-to-DRL machinery.
                lpn, npages = recent_large[pick % len(recent_large)]
                sub_len = max(1, int(u_frac * min(npages, cfg.small_size_max + 1)))
                offset = pick % max(1, npages - sub_len + 1)
                return lpn + offset, sub_len
        # Cold read anywhere on the volume.
        lpn = pick % device_span
        return lpn, max(1, fallback_size)


def generate_trace(config: SyntheticConfig) -> Trace:
    """Convenience wrapper: build the generator and produce the trace."""
    return SyntheticTraceGenerator(config).generate()
