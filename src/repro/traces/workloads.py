"""The six paper workloads, calibrated to Table 2.

The paper evaluates on five MSR-Cambridge traces plus one enterprise VDI
trace (Table 2).  This module defines one :class:`SyntheticConfig` per
trace whose request count, write ratio and mean write size match the
table, and whose locality structure is tuned so the motivation
statistics (Figures 2 and 3) reproduce: small writes re-access a compact
hot set, large writes stream and are rarely re-read.

Everything is expressed at **full paper scale**; experiments normally run
at ``DEFAULT_SCALE`` (1/16) with the DRAM cache scaled by the same
factor, which preserves cache-to-footprint ratios (see DESIGN.md §3).

======  ========  ========  ========  ==========================
trace   requests  wr ratio  wr size   character
======  ========  ========  ========  ==========================
hm_1     609312     4.7%    20.0 KB   read-heavy, hot small writes
lun_1   1894391    33.2%    18.6 KB   VDI, weak locality
usr_0   2237889    59.6%    10.3 KB   small-write dominated
src1_2  1907773    74.6%    32.5 KB   mixed, strong locality
ts_0    1801734    82.4%     8.0 KB   tiny writes
proj_0  4224525    87.5%    40.9 KB   large sequential + hot small
======  ========  ========  ========  ==========================
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticConfig, generate_trace

__all__ = [
    "PAPER_WORKLOADS",
    "WORKLOAD_ORDER",
    "DEFAULT_SCALE",
    "get_workload",
    "get_config",
    "scaled_cache_bytes",
    "PAPER_CACHE_SIZES_MB",
]

#: Order used by every figure in the paper (ascending write ratio).
WORKLOAD_ORDER: List[str] = ["hm_1", "lun_1", "usr_0", "src1_2", "ts_0", "proj_0"]

#: DRAM data-cache sizes evaluated in the paper (Table 1).
PAPER_CACHE_SIZES_MB: List[int] = [16, 32, 64]

#: Default scale factor applied to request counts, footprints and cache
#: sizes for offline reproduction (see DESIGN.md §3).
DEFAULT_SCALE: float = 1.0 / 16.0

PAPER_WORKLOADS: Dict[str, SyntheticConfig] = {
    # Read-heavy; the few writes are intensely re-accessed (Frequent
    # R(Wr) = 83.9% in Table 2), so the write buffer serves mostly reads.
    "hm_1": SyntheticConfig(
        name="hm_1",
        n_requests=609_312,
        seed=1001,
        write_ratio=0.047,
        small_write_fraction=0.60,
        small_size_mean=2.0,
        small_size_max=4,
        large_size_mean=9.5,
        large_size_max=64,
        n_hot_slots=4096,
        zipf_theta=1.10,
        large_span_pages=120_000,
        large_rewrite_prob=0.25,
        read_recent_prob=0.75,
        read_small_bias=0.85,
        target_pages_per_ms=4.5,
    ),
    # Enterprise VDI volume: the weakest locality of the set (Frequent R
    # only 12.4%), so every policy's hit ratio is low.
    "lun_1": SyntheticConfig(
        name="lun_1",
        n_requests=1_894_391,
        seed=1002,
        write_ratio=0.332,
        small_write_fraction=0.60,
        small_size_mean=2.0,
        small_size_max=4,
        large_size_mean=8.6,
        large_size_max=64,
        n_hot_slots=4096,
        zipf_theta=0.60,
        large_span_pages=200_000,
        large_rewrite_prob=0.08,
        read_recent_prob=0.35,
        read_small_bias=0.60,
        target_pages_per_ms=4.5,
    ),
    # User home directories: small writes dominate both count and hits.
    "usr_0": SyntheticConfig(
        name="usr_0",
        n_requests=2_237_889,
        seed=1003,
        write_ratio=0.596,
        small_write_fraction=0.75,
        small_size_mean=1.5,
        small_size_max=3,
        large_size_mean=6.0,
        large_size_max=48,
        n_hot_slots=8192,
        zipf_theta=1.00,
        large_span_pages=150_000,
        large_rewrite_prob=0.15,
        read_recent_prob=0.60,
        read_small_bias=0.80,
        target_pages_per_ms=4.5,
    ),
    # Source-control server: both size classes well represented and hot
    # (Frequent R = 79.6%) — the case where Req-block shines (Fig. 9).
    "src1_2": SyntheticConfig(
        name="src1_2",
        n_requests=1_907_773,
        seed=1004,
        write_ratio=0.746,
        small_write_fraction=0.55,
        small_size_mean=2.5,
        small_size_max=5,
        large_size_mean=15.0,
        large_size_max=96,
        n_hot_slots=5120,
        zipf_theta=1.15,
        large_span_pages=250_000,
        large_rewrite_prob=0.20,
        read_recent_prob=0.70,
        read_small_bias=0.80,
        target_pages_per_ms=4.5,
    ),
    # Terminal server: tiny writes (8 KB mean), write-dominated.
    "ts_0": SyntheticConfig(
        name="ts_0",
        n_requests=1_801_734,
        seed=1005,
        write_ratio=0.824,
        small_write_fraction=0.80,
        small_size_mean=1.4,
        small_size_max=3,
        large_size_mean=4.5,
        large_size_max=32,
        n_hot_slots=6144,
        zipf_theta=1.00,
        large_span_pages=100_000,
        large_rewrite_prob=0.15,
        read_recent_prob=0.55,
        read_small_bias=0.85,
        target_pages_per_ms=4.5,
    ),
    # Project directories: the most write-intensive trace, with a heavy
    # tail of very large sequential writes next to a hot small-write set.
    "proj_0": SyntheticConfig(
        name="proj_0",
        n_requests=4_224_525,
        seed=1006,
        write_ratio=0.875,
        small_write_fraction=0.50,
        small_size_mean=2.0,
        small_size_max=4,
        large_size_mean=18.4,
        large_size_max=128,
        n_hot_slots=4096,
        zipf_theta=1.20,
        large_span_pages=400_000,
        large_rewrite_prob=0.18,
        read_recent_prob=0.70,
        read_small_bias=0.75,
        target_pages_per_ms=4.5,
    ),
}


def get_config(name: str, scale: float = DEFAULT_SCALE) -> SyntheticConfig:
    """The (optionally scaled) generator config for a named paper workload."""
    try:
        cfg = PAPER_WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOAD_ORDER)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return cfg if scale == 1.0 else cfg.scaled(scale)


@lru_cache(maxsize=32)
def _cached_trace(name: str, scale: float) -> Trace:
    return generate_trace(get_config(name, scale))


def get_workload(name: str, scale: float = DEFAULT_SCALE) -> Trace:
    """Generate (and memoise) a named paper workload at ``scale``."""
    return _cached_trace(name, scale)


def scaled_cache_bytes(paper_mb: int, scale: float = DEFAULT_SCALE) -> int:
    """DRAM data-cache size to pair with traces generated at ``scale``.

    The paper evaluates 16/32/64 MB caches against full-length traces;
    when the traces are scaled down, the cache must shrink by the same
    factor to keep the cache-to-footprint ratio (and therefore hit-ratio
    behaviour) comparable.
    """
    return max(4096, int(paper_mb * 1024 * 1024 * scale))
