"""Multi-tenant workload populations: N streams, one device.

The ROADMAP's "millions of users" north star starts here: instead of
one trace against one cache, a *population* of N tenants shares the
device.  Each tenant is a scaled-down copy of a paper workload driving
its own private LBA zone; tenant activity follows a Zipf(``skew``)
distribution, so tenant 0 is the heavy hitter and the tail tenants are
light — the classic noisy-neighbor shape.  The per-tenant streams are
interleaved deterministically by arrival time
(:func:`repro.traces.transform.interleave_traces`), and the zone layout
is captured in a :class:`TenantMap` so the cache and accounting layers
can attribute any LPN back to its tenant without touching the request
model.

Determinism: per-tenant generator seeds derive from the population seed
via ``numpy.random.SeedSequence`` spawn keys (the repo convention also
used by ``repro.sim.parallel.derive_shard_seed``; a distinct salt keeps
tenant streams from ever aliasing shard streams), and the interleave is
a stable sort — no step consults global RNG state, so a population is
bit-identical across runs, platforms, and multiprocessing start
methods.

The single-tenant population is special-cased to return the memoised
base workload *unchanged* (same object, same seed, no remap), which is
what makes ``--tenancy shared --tenants 1`` byte-identical to a legacy
replay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.traces.model import Trace
from repro.traces.synthetic import _zipf_probabilities, generate_trace
from repro.traces.transform import interleave_traces
from repro.traces.workloads import DEFAULT_SCALE, get_config, get_workload
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "TenantMap",
    "TenantPopulation",
    "tenant_weights",
    "derive_tenant_seed",
    "build_population",
    "interleave_msr_tenants",
]

#: Spawn-key salt separating tenant seed streams from shard seed
#: streams (``derive_shard_seed`` uses a bare ``(index,)`` key).
_TENANT_SALT = 0x7E7A


@dataclass(frozen=True)
class TenantMap:
    """The zone layout of a multi-tenant device: who owns which LPNs.

    Tenant ``i`` owns ``[i * zone_pages, (i + 1) * zone_pages)``; any
    address at or beyond the last zone boundary is attributed to the
    last tenant (addresses never land there for populations built by
    this module, but attribution must total).  Frozen and trivially
    picklable, so it ships inside :class:`ReplayConfig` to shard
    workers unchanged.
    """

    n_tenants: int
    zone_pages: int

    def __post_init__(self) -> None:
        require_positive(self.n_tenants, "n_tenants")
        require_positive(self.zone_pages, "zone_pages")

    def tenant_of(self, lpn: int) -> int:
        """The tenant owning ``lpn`` (total: every LPN maps somewhere)."""
        t = lpn // self.zone_pages
        n = self.n_tenants
        return t if t < n else n - 1

    @property
    def device_pages(self) -> int:
        """Total pages spanned by all zones."""
        return self.n_tenants * self.zone_pages


@dataclass(frozen=True)
class TenantPopulation:
    """Value-type spec of a synthetic tenant population.

    Carries everything needed to rebuild the population from scratch —
    shard and sweep workers regenerate traces from this spec rather
    than pickling megabytes of requests.
    """

    base: str  # paper workload the tenants are cloned from
    n_tenants: int
    scale: float = DEFAULT_SCALE
    skew: float = 1.0  # Zipf theta over tenant activity; 0 = uniform
    seed: int = 0  # population seed (tenant seeds derive from it)

    def __post_init__(self) -> None:
        require_positive(self.n_tenants, "n_tenants")
        require_positive(self.scale, "scale")
        require_non_negative(self.skew, "skew")

    def build(self) -> Tuple[Trace, TenantMap, Tuple[float, ...]]:
        """Materialise ``(trace, tenant_map, weights)`` for this spec."""
        return build_population(
            self.base,
            self.n_tenants,
            scale=self.scale,
            skew=self.skew,
            seed=self.seed,
        )


def tenant_weights(n_tenants: int, skew: float = 1.0) -> Tuple[float, ...]:
    """Normalised activity weights for ``n_tenants`` under Zipf(``skew``).

    Weight ``i`` is the fraction of the base workload's activity tenant
    ``i`` generates; ``skew=0`` splits evenly, larger values concentrate
    activity on tenant 0 (the noisy neighbor).
    """
    require_positive(n_tenants, "n_tenants")
    require_non_negative(skew, "skew")
    return tuple(float(w) for w in _zipf_probabilities(n_tenants, skew))


def derive_tenant_seed(seed: int, index: int) -> int:
    """Deterministic per-tenant generator seed from the population seed.

    Same ``SeedSequence`` spawn-key mechanism as
    :func:`repro.sim.parallel.derive_shard_seed` (implemented locally —
    traces must not import the sim layer) with a salt in the key, so
    tenant streams never alias shard streams derived from the same
    base seed.
    """
    ss = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(_TENANT_SALT, int(index))
    )
    return int(ss.generate_state(1, dtype=np.uint64)[0])


@lru_cache(maxsize=8)
def _cached_population(
    base: str, n_tenants: int, scale: float, skew: float, seed: int
) -> Tuple[Trace, TenantMap, Tuple[float, ...]]:
    weights = tenant_weights(n_tenants, skew)
    if n_tenants == 1:
        # The degenerate population IS the base workload: same memoised
        # trace object, same seed, no remap — the byte-identity anchor
        # for `--tenancy shared --tenants 1`.
        trace = get_workload(base, scale)
        return trace, TenantMap(1, trace.max_lpn() + 1), weights

    streams: List[Trace] = []
    for i, w in enumerate(weights):
        cfg = replace(
            get_config(base, scale).scaled(w),
            name=f"{base}#t{i}",
            seed=derive_tenant_seed(seed, i),
        )
        streams.append(generate_trace(cfg))
    # Every zone is sized to the heaviest tenant's *generated* footprint
    # (a config-derived bound would undershoot: large writes may start
    # near the end of the large span and run past it), so zones are
    # uniform (O(1) tenant_of) and can never collide.
    zone_pages = max(
        (t.max_lpn() + 1 if len(t) else 1) for t in streams
    )
    trace = interleave_traces(
        streams, zone_pages=zone_pages, name=f"{base}x{n_tenants}"
    )
    return trace, TenantMap(n_tenants, zone_pages), weights


def build_population(
    base: str,
    n_tenants: int,
    scale: float = DEFAULT_SCALE,
    skew: float = 1.0,
    seed: int = 0,
) -> Tuple[Trace, TenantMap, Tuple[float, ...]]:
    """Build (and memoise) an N-tenant population of a paper workload.

    Tenant ``i`` runs the base workload scaled by its activity weight
    (``SyntheticConfig.scaled`` shrinks request count and footprint
    together, so light tenants are genuinely smaller, not just
    shorter), seeded independently, and remapped into its own LBA
    zone.  The combined trace's total request count approximates the
    base workload's, so a population replay costs about the same as a
    single-tenant one.
    """
    return _cached_population(base, n_tenants, float(scale), float(skew), int(seed))


def interleave_msr_tenants(
    streams: Sequence[Trace], name: str = "msr-tenants"
) -> Tuple[Trace, TenantMap]:
    """Treat real (e.g. MSR) traces as tenants sharing one device.

    Zones are sized to the largest input footprint; each trace is
    shifted into its own zone and the streams are interleaved by
    arrival time.  Returns the combined trace plus the
    :class:`TenantMap` to replay it under.
    """
    if not streams:
        raise ValueError("interleave_msr_tenants needs at least one trace")
    zone_pages = max(
        (t.max_lpn() + 1 if len(t) else 1) for t in streams
    )
    trace = interleave_traces(streams, zone_pages=zone_pages, name=name)
    return trace, TenantMap(len(streams), zone_pages)
