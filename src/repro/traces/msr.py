"""Parser for MSR-Cambridge block I/O traces.

The paper replays five MSR-Cambridge traces (``hm_1``, ``usr_0``,
``src1_2``, ``ts_0``, ``proj_0``) plus one enterprise-VDI trace.  The
MSR collection is distributed as CSV with the schema::

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where ``Timestamp`` is in Windows filetime units (100 ns ticks),
``Type`` is ``Read``/``Write``, ``Offset`` is a byte offset and ``Size``
a byte count.  This module parses that format (and the common
whitespace/short variants) into a :class:`repro.traces.model.Trace`, so
the experiments run unchanged on the real traces when they are
available; the offline reproduction substitutes the calibrated
generators in :mod:`repro.traces.workloads`.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Union

from repro.traces.model import IORequest, OpType, Trace

__all__ = ["parse_msr_csv", "load_msr_trace", "MSRParseError"]

# Windows filetime ticks per millisecond.
_TICKS_PER_MS = 10_000


class MSRParseError(ValueError):
    """Raised when a trace line cannot be interpreted."""


def _parse_op(token: str) -> OpType:
    t = token.strip().lower()
    if t in ("read", "r", "rs", "0"):
        return OpType.READ
    if t in ("write", "w", "ws", "1"):
        return OpType.WRITE
    raise MSRParseError(f"unrecognised request type {token!r}")


def parse_msr_csv(
    lines: Iterable[str],
    *,
    disk_filter: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[IORequest]:
    """Yield :class:`IORequest` from MSR-Cambridge CSV lines.

    Parameters
    ----------
    lines:
        An iterable of text lines (header lines are skipped).
    disk_filter:
        If given, keep only records whose ``DiskNumber`` matches.
    limit:
        Stop after this many parsed requests.

    Notes
    -----
    Timestamps are rebased so the first record is at t=0 and converted
    to milliseconds.  Zero-size records (present in some trace files)
    are skipped.
    """
    reader = csv.reader(lines)
    t0: Optional[int] = None
    emitted = 0
    for lineno, row in enumerate(reader, start=1):
        if not row or row[0].lstrip().startswith("#"):
            continue
        if len(row) < 6:
            raise MSRParseError(
                f"line {lineno}: expected >=6 CSV fields, got {len(row)}: {row!r}"
            )
        try:
            ticks = int(row[0])
            disk = int(row[2])
            op = _parse_op(row[3])
            offset = int(row[4])
            size = int(row[5])
        except (ValueError, MSRParseError) as exc:
            # Tolerate a header row only at the very start of the stream.
            if lineno == 1:
                continue
            raise MSRParseError(f"line {lineno}: {exc}") from exc
        if disk_filter is not None and disk != disk_filter:
            continue
        if size <= 0:
            continue
        if t0 is None:
            t0 = ticks
        # Records occasionally arrive out of order in the MSR files; a
        # record earlier than the first one would get a negative rebased
        # time, so clamp to 0 (load_msr_trace sorts afterwards anyway).
        time_ms = max(0.0, (ticks - t0) / _TICKS_PER_MS)
        # Offsets are bytes; convert via sectors for consistent rounding.
        sector, rem = divmod(offset, 512)
        yield IORequest.from_sectors(
            time=time_ms, op=op, sector=sector, nbytes=size + rem
        )
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def load_msr_trace(
    path: Union[str, Path],
    *,
    name: Optional[str] = None,
    disk_filter: Optional[int] = None,
    limit: Optional[int] = None,
) -> Trace:
    """Load an MSR-Cambridge CSV (optionally gzipped) into a :class:`Trace`.

    ``name`` defaults to the file stem.  Out-of-order timestamps (rare
    in the MSR collection but present) are tolerated by sorting.
    """
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", newline="") as fh:  # type: ignore[operator]
        requests = list(parse_msr_csv(fh, disk_filter=disk_filter, limit=limit))
    requests.sort(key=lambda r: r.time)
    return Trace(name or path.stem.removesuffix(".csv"), requests)


def dump_msr_csv(trace: Trace, fh: TextIO) -> int:
    """Write ``trace`` back out in MSR CSV format; returns lines written.

    Useful for round-trip tests and for exporting synthetic workloads to
    other simulators (e.g. the original SSDsim).
    """
    writer = csv.writer(fh, lineterminator="\n")
    n = 0
    for r in trace:
        writer.writerow(
            [
                int(round(r.time * _TICKS_PER_MS)),
                trace.name,
                0,
                "Read" if r.is_read else "Write",
                r.lpn * 4096,
                r.npages * 4096,
                0,
            ]
        )
        n += 1
    return n
