"""Trace substrate: request model, MSR parser, synthetic paper workloads."""

from repro.traces.model import PAGE_SIZE_BYTES, IORequest, OpType, Trace
from repro.traces.io import cached_workload, load_trace, save_trace
from repro.traces.msr import load_msr_trace, parse_msr_csv
from repro.traces.patterns import (
    mixed_pattern,
    random_writes,
    sequential_writes,
    zipf_writes,
)
from repro.traces.stats import TraceSpec, characterize, mean_request_pages
from repro.traces.synthetic import (
    SyntheticConfig,
    SyntheticTraceGenerator,
    generate_trace,
)
from repro.traces.tenants import (
    TenantMap,
    TenantPopulation,
    build_population,
    derive_tenant_seed,
    interleave_msr_tenants,
    tenant_weights,
)
from repro.traces.transform import (
    filter_ops,
    interleave_traces,
    merge_traces,
    remap_addresses,
    slice_time,
    time_scale,
)
from repro.traces.workloads import (
    DEFAULT_SCALE,
    PAPER_CACHE_SIZES_MB,
    PAPER_WORKLOADS,
    WORKLOAD_ORDER,
    get_config,
    get_workload,
    scaled_cache_bytes,
)

__all__ = [
    "PAGE_SIZE_BYTES",
    "IORequest",
    "OpType",
    "Trace",
    "cached_workload",
    "load_trace",
    "save_trace",
    "load_msr_trace",
    "parse_msr_csv",
    "mixed_pattern",
    "random_writes",
    "sequential_writes",
    "zipf_writes",
    "TenantMap",
    "TenantPopulation",
    "build_population",
    "derive_tenant_seed",
    "interleave_msr_tenants",
    "tenant_weights",
    "filter_ops",
    "interleave_traces",
    "merge_traces",
    "remap_addresses",
    "slice_time",
    "time_scale",
    "TraceSpec",
    "characterize",
    "mean_request_pages",
    "SyntheticConfig",
    "SyntheticTraceGenerator",
    "generate_trace",
    "DEFAULT_SCALE",
    "PAPER_CACHE_SIZES_MB",
    "PAPER_WORKLOADS",
    "WORKLOAD_ORDER",
    "get_config",
    "get_workload",
    "scaled_cache_bytes",
]
