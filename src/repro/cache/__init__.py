"""DRAM cache policies: framework, baselines, and the policy registry."""

from repro.cache.base import AccessOutcome, CachePolicy, FlushBatch, WriteBufferPolicy
from repro.cache.bplru import BPLRUCache
from repro.cache.cflru import CFLRUCache
from repro.cache.ecr import DeviceFeedback, ECRCache
from repro.cache.fab import FABCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.pudlru import PUDLRUCache
from repro.cache.registry import (
    PAPER_COMPARISON,
    available_policies,
    create_policy,
    policy_class,
    register_policy,
)
from repro.cache.tenant import PARTITION_MODES, TenantPartitioner, split_capacity
from repro.cache.vbbms import VBBMSCache

__all__ = [
    "AccessOutcome",
    "CachePolicy",
    "FlushBatch",
    "WriteBufferPolicy",
    "BPLRUCache",
    "CFLRUCache",
    "DeviceFeedback",
    "ECRCache",
    "FABCache",
    "FIFOCache",
    "LFUCache",
    "LRUCache",
    "PUDLRUCache",
    "VBBMSCache",
    "PARTITION_MODES",
    "TenantPartitioner",
    "split_capacity",
    "PAPER_COMPARISON",
    "available_policies",
    "create_policy",
    "policy_class",
    "register_policy",
]
