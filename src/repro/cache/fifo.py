"""Page-level FIFO write buffer.

Insertion order only — hits do not promote.  Included as the classic
recency-free baseline (paper §2.1) and reused by VBBMS for its
sequential region.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.cache.lru import PageNode
from repro.traces.model import IORequest
from repro.utils.dll import DoublyLinkedList

__all__ = ["FIFOCache"]


class FIFOCache(WriteBufferPolicy):
    """First-in first-out write buffer at page granularity."""

    name = "fifo"
    node_bytes = 12

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._list: DoublyLinkedList[PageNode] = DoublyLinkedList("fifo")
        self._index: Dict[int, PageNode] = {}

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def _on_hit(self, lpn: int, request: IORequest) -> None:
        # FIFO ignores recency: a hit updates data in place but the
        # page keeps its insertion-order position.
        pass

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        node = PageNode(lpn)
        self._index[lpn] = node
        self._list.push_head(node)
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        victim = self._list.pop_tail()
        assert victim is not None, "evict called on empty cache"
        del self._index[victim.lpn]
        self._occupancy -= 1
        outcome.flushes.append(FlushBatch([victim.lpn]))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = [n.lpn for n in self._list]
        self._list.clear()
        self._index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        assert len(self._list) == len(self._index) == self._occupancy
