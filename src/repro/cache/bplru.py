"""BPLRU — Block Padding LRU (Kim & Ahn, FAST 2008).

Block-level LRU over 64-page SSD blocks with two signature mechanisms:

* **LRU compensation** — a block whose pages were written sequentially
  (in ascending order, ending at the block boundary) is moved to the LRU
  *tail*, because sequentially written data is unlikely to be rewritten
  soon;
* **single-block flush** — an evicted block's pages are flushed onto one
  physical SSD block (the RAM buffer is block-mapped).  The controller
  honours this via ``FlushBatch.pin_key``, which is the paper's
  explanation for BPLRU's weaker response times: the flush cannot
  exploit channel parallelism (§4.2.2).

**Page padding** (reading the block's missing pages so a full block can
be switch-merged) is supported behind ``page_padding=True``; it is off
by default because the paper's Figure 10/11 eviction and write counts
are consistent with flushing only the cached pages.  When enabled, the
padding reads are reported in the outcome so the controller can charge
their flash-read time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.traces.model import IORequest, OpType
from repro.utils.dll import DLLNode, DoublyLinkedList

__all__ = ["BPLRUCache"]


class _BPLRUBlock(DLLNode):
    __slots__ = ("lbn", "pages", "last_offset", "in_order")

    def __init__(self, lbn: int) -> None:
        super().__init__()
        self.lbn = lbn
        self.pages: Set[int] = set()
        self.last_offset = -1  # offset of the most recently inserted page
        self.in_order = True  # inserts so far were strictly ascending


class BPLRUCache(WriteBufferPolicy):
    """Block-padding LRU write buffer."""

    name = "bplru"
    node_bytes = 24  # paper §4.2.5: 24 B per block node

    def __init__(
        self,
        capacity_pages: int,
        pages_per_block: int = 64,
        page_padding: bool = False,
    ) -> None:
        super().__init__(capacity_pages)
        self.pages_per_block = pages_per_block
        self.page_padding = page_padding
        self._list: DoublyLinkedList[_BPLRUBlock] = DoublyLinkedList("bplru")
        self._blocks: Dict[int, _BPLRUBlock] = {}
        self._page_index: Dict[int, _BPLRUBlock] = {}

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._page_index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._page_index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Fused fast path: one page-index probe per page instead of the
        template's ``contains`` + ``_on_hit`` double lookup.  Mirrors the
        template loop exactly (the traced path still runs it); pinned by
        the fast-path equivalence test.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        page_index = self._page_index
        index_get = page_index.get
        blocks = self._blocks
        blocks_get = blocks.get
        lst = self._list
        move_to_head = lst.move_to_head
        push_head = lst.push_head
        move_to_tail = lst.move_to_tail
        evict_one = self._evict_one
        ppb = self.pages_per_block
        capacity = self.capacity_pages
        is_write = request.op is OpType.WRITE
        read_misses = outcome.read_miss_lpns
        occ = self._occupancy
        hits = misses = inserted = 0
        for lpn in request.pages():
            block = index_get(lpn)
            if block is not None:
                hits += 1
                # A rewrite breaks the "written once, sequentially"
                # pattern, so the block rejoins the MRU end.
                block.in_order = False
                move_to_head(block)
            elif is_write:
                misses += 1
                while occ >= capacity:
                    self._occupancy = occ
                    evict_one(outcome)
                    occ = self._occupancy
                # Inlined ``_insert`` (the traced template path still
                # runs the method; pinned by the equivalence test).
                lbn, offset = divmod(lpn, ppb)
                block = blocks_get(lbn)
                if block is None:
                    block = _BPLRUBlock(lbn)
                    blocks[lbn] = block
                    push_head(block)
                else:
                    if offset != block.last_offset + 1:
                        block.in_order = False
                    move_to_head(block)
                block.pages.add(lpn)
                block.last_offset = offset
                page_index[lpn] = block
                occ += 1
                inserted += 1
                # LRU compensation: a fully sequential block that just
                # reached the block boundary joins the eviction end.
                if (
                    block.in_order
                    and offset == ppb - 1
                    and len(block.pages) == ppb
                ):
                    move_to_tail(block)
            else:
                misses += 1
                read_misses.append(lpn)
        self._occupancy = occ
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        block = self._page_index[lpn]
        # A rewrite breaks the "written once, sequentially" pattern, so
        # the block rejoins the MRU end like any hot block.
        block.in_order = False
        self._list.move_to_head(block)

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        lbn, offset = divmod(lpn, self.pages_per_block)
        block = self._blocks.get(lbn)
        if block is None:
            block = _BPLRUBlock(lbn)
            self._blocks[lbn] = block
            self._list.push_head(block)
        else:
            if offset != block.last_offset + 1:
                block.in_order = False
            self._list.move_to_head(block)
        block.pages.add(lpn)
        block.last_offset = offset
        self._page_index[lpn] = block
        self._occupancy += 1
        # LRU compensation: a fully sequential block that just reached
        # the block boundary is demoted to the eviction end.
        if (
            block.in_order
            and offset == self.pages_per_block - 1
            and len(block.pages) == self.pages_per_block
        ):
            self._list.move_to_tail(block)

    def _evict_one(self, outcome: AccessOutcome) -> None:
        victim = self._list.pop_tail()
        assert victim is not None, "evict called on empty cache"
        lpns = sorted(victim.pages)
        for lpn in lpns:
            del self._page_index[lpn]
        del self._blocks[victim.lbn]
        self._occupancy -= len(lpns)
        if self.page_padding and len(lpns) < self.pages_per_block:
            base = victim.lbn * self.pages_per_block
            present = victim.pages
            padding = [
                base + off
                for off in range(self.pages_per_block)
                if (base + off) not in present
            ]
            # Padding pages are read from flash and written back as part
            # of the same single-block flush.
            outcome.read_miss_lpns.extend(padding)
            lpns = sorted(lpns + padding)
        outcome.flushes.append(
            FlushBatch(lpns, reason="capacity", pin_key=victim.lbn)
        )

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self._page_index.keys())
        self._list.clear()
        self._blocks.clear()
        self._page_index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        total = 0
        for block in self._list:
            assert self._blocks[block.lbn] is block
            assert block.pages, f"empty block {block.lbn} retained in list"
            for lpn in block.pages:
                assert lpn // self.pages_per_block == block.lbn
                assert self._page_index[lpn] is block
            total += len(block.pages)
        assert total == self._occupancy == len(self._page_index)
        assert len(self._blocks) == len(self._list)
