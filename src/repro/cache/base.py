"""Cache-policy framework shared by all replacement schemes.

Semantics follow the paper's Algorithm 1: the DRAM data cache is a
**write buffer**.  Requests are processed page by page, in LPN order:

* a **write page** that is already cached is updated in place (a *hit*);
  otherwise it is inserted (a *miss*), evicting first if the cache is
  full;
* a **read page** that is cached is served from DRAM (a *hit*);
  otherwise it is read from flash (a *miss*) and **not** inserted.

A policy's ``access`` returns an :class:`AccessOutcome` describing what
happened; evictions are expressed as :class:`FlushBatch` objects — the
SSD controller turns each batch into flash programs, striped across
channels unless the batch carries a ``pin_key`` (BPLRU's single-block
flush).  Policies never touch the SSD directly, which keeps them unit-
testable in isolation and lets the analysis experiments run them without
a timing model at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, List, Optional

from repro.obs.events import CacheHit, CacheMiss, Evict, Insert
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.model import IORequest
from repro.utils.validation import require_positive

__all__ = ["FlushBatch", "AccessOutcome", "CachePolicy", "WriteBufferPolicy"]


@dataclass(slots=True)
class FlushBatch:
    """A set of pages evicted together (flushed to flash in one batch)."""

    lpns: List[int]
    reason: str = "capacity"
    #: When set, the controller programs the whole batch into the plane
    #: ``pin_key % n_planes`` instead of striping it — models policies
    #: that flush a logical block onto one physical SSD block.
    pin_key: Optional[int] = None

    def __len__(self) -> int:
        return len(self.lpns)


@dataclass(slots=True)
class AccessOutcome:
    """Per-request result of a cache access (page granularity)."""

    #: Pages found in the cache (read hits + write updates).
    page_hits: int = 0
    #: Pages not found (write inserts + read misses).
    page_misses: int = 0
    #: Read pages that must be fetched from flash.
    read_miss_lpns: List[int] = field(default_factory=list)
    #: Write pages newly inserted into the cache.
    inserted_pages: int = 0
    #: Evictions triggered while serving this request, in order.
    flushes: List[FlushBatch] = field(default_factory=list)

    @property
    def total_pages(self) -> int:
        """Pages touched by the request (hits + misses)."""
        return self.page_hits + self.page_misses

    @property
    def flushed_pages(self) -> int:
        """Pages evicted across all flush batches of this access."""
        return sum(len(b) for b in self.flushes)


class CachePolicy(abc.ABC):
    """Abstract DRAM-cache replacement policy.

    Subclasses set ``name`` (registry key) and ``node_bytes`` (per-item
    metadata size used by the Figure-12 space-overhead model) and
    implement the page-granularity access protocol.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""
    #: Bytes of list metadata per cached item (paper §4.2.5: page node
    #: 12 B, block node 24 B, request-block node 32 B).
    node_bytes: ClassVar[int] = 12

    def __init__(self, capacity_pages: int) -> None:
        require_positive(capacity_pages, "capacity_pages")
        self.capacity_pages = capacity_pages
        #: Observability sink (see :mod:`repro.obs`).  Defaults to the
        #: shared disabled tracer; every emission site is guarded with
        #: ``if tracer.enabled:`` so the default costs one branch.
        self.tracer: Tracer = NULL_TRACER
        #: Metrics registry (see :mod:`repro.obs.metrics`).  Defaults to
        #: the shared disabled registry; per-request cache counters are
        #: recorded from the :class:`AccessOutcome` by the replay layer,
        #: so policies only pay for metrics on their rare paths.
        self.metrics: MetricsRegistry = NULL_METRICS
        #: Monotone per-policy request sequence number carried by events.
        self._req_seq = 0
        #: Logical per-page clock stamped on events (advances only while
        #: a tracer is enabled; event times are meaningful within a run,
        #: not across tracer reconfiguration).
        self._event_clock = 0

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach an event tracer (None restores the disabled default)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Attach a metrics registry (None restores the disabled default).

        Registers a collector refreshing the generic cache gauges
        (occupancy, capacity, metadata footprint) right before each
        snapshot; subclasses extend this with their own instruments.  A
        registry is bound to one replay — do not reuse across runs.
        """
        self.metrics = registry if registry is not None else NULL_METRICS
        if not self.metrics.enabled:
            return
        occupancy = self.metrics.gauge("cache.occupancy_pages")
        capacity = self.metrics.gauge("cache.capacity_pages")
        metadata = self.metrics.gauge("cache.metadata_bytes")

        def collect(_now: float) -> None:
            occupancy.set(self.occupancy())
            capacity.set(self.capacity_pages)
            metadata.set(self.metadata_bytes())

        self.metrics.register_collector(collect)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def access(self, request: IORequest) -> AccessOutcome:
        """Serve one request through the cache (Algorithm 1 main loop)."""

    @abc.abstractmethod
    def occupancy(self) -> int:
        """Number of pages currently cached (always <= capacity)."""

    @abc.abstractmethod
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""

    @abc.abstractmethod
    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified); for tests and draining."""

    @abc.abstractmethod
    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count (space-overhead model)."""

    # ------------------------------------------------------------------
    # Common services
    # ------------------------------------------------------------------
    def metadata_bytes(self) -> int:
        """Current metadata footprint in bytes (Fig. 12)."""
        return self.metadata_nodes() * self.node_bytes

    def flush_all(self) -> FlushBatch:
        """Drain the cache (device shutdown); returns one batch of all pages.

        Policies must override this (and reset their internal structure
        while doing so); the base implementation raises.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support flush_all")

    def validate(self) -> None:
        """Check internal invariants (tests); default checks capacity."""
        occ = self.occupancy()
        assert 0 <= occ <= self.capacity_pages, (
            f"{self.name}: occupancy {occ} outside [0, {self.capacity_pages}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} capacity={self.capacity_pages} "
            f"occupancy={self.occupancy()}>"
        )


class WriteBufferPolicy(CachePolicy):
    """Base class implementing the Algorithm-1 page loop.

    Subclasses implement the four primitive hooks; the base class walks
    the request's pages, dispatches to them, and assembles the
    :class:`AccessOutcome`.  This mirrors Algorithm 1's structure:
    ``while size != 0: if is_in_cache(lpn): ... else: ...``.

    Hooks
    -----
    ``_on_hit(lpn, request)``
        ``lpn`` is cached and was read or updated; adjust recency
        structures.
    ``_insert(lpn, request, outcome)``
        Cache the written page ``lpn`` (cache is guaranteed non-full).
    ``_evict_one(outcome)``
        The cache is full; evict at least one page, appending the
        resulting :class:`FlushBatch` to ``outcome.flushes``.
    """

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._occupancy = 0

    # -- hooks ---------------------------------------------------------
    @abc.abstractmethod
    def _on_hit(self, lpn: int, request: IORequest) -> None: ...

    @abc.abstractmethod
    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None: ...

    @abc.abstractmethod
    def _evict_one(self, outcome: AccessOutcome) -> None: ...

    # -- template ------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Algorithm-1 page loop: dispatch each page to the hooks.

        Tracing gets its own loop (``_access_traced``) so the common
        disabled path pays exactly one branch per *request*, not several
        per page — measured at ~10% of cache-only replay time otherwise.
        The two loops must stay behaviourally identical; the
        differential and fast-path-equivalence tests pin that.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        contains = self.contains
        on_hit = self._on_hit
        insert = self._insert
        evict_one = self._evict_one
        capacity = self.capacity_pages
        is_write = request.is_write
        read_misses = outcome.read_miss_lpns
        hits = misses = inserted = 0
        for lpn in request.pages():
            if contains(lpn):
                hits += 1
                on_hit(lpn, request)
            elif is_write:
                misses += 1
                while self._occupancy >= capacity:
                    before = self._occupancy
                    evict_one(outcome)
                    if self._occupancy >= before:
                        raise RuntimeError(
                            f"{type(self).__name__}._evict_one freed nothing"
                        )
                insert(lpn, request, outcome)
                inserted += 1
            else:
                misses += 1
                read_misses.append(lpn)
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _access_traced(self, request: IORequest) -> AccessOutcome:
        """The page loop with event emission; mirrors ``access``."""
        outcome = AccessOutcome()
        tracer = self.tracer
        req_id = self._req_seq
        self._req_seq += 1
        for lpn in request.pages():
            self._event_clock += 1
            if self.contains(lpn):
                outcome.page_hits += 1
                tracer.emit(CacheHit(self._event_clock, req_id, lpn, self.name))
                self._on_hit(lpn, request)
            else:
                outcome.page_misses += 1
                tracer.emit(
                    CacheMiss(self._event_clock, req_id, lpn, request.is_write)
                )
                if request.is_write:
                    while self._occupancy >= self.capacity_pages:
                        before = self._occupancy
                        n_flushes = len(outcome.flushes)
                        self._evict_one(outcome)
                        if self._occupancy >= before:
                            raise RuntimeError(
                                f"{type(self).__name__}._evict_one freed nothing"
                            )
                        for batch in outcome.flushes[n_flushes:]:
                            tracer.emit(
                                Evict(
                                    self._event_clock,
                                    req_id,
                                    tuple(batch.lpns),
                                    self.name,
                                )
                            )
                    self._insert(lpn, request, outcome)
                    outcome.inserted_pages += 1
                    tracer.emit(Insert(self._event_clock, req_id, lpn, self.name))
                else:
                    outcome.read_miss_lpns.append(lpn)
        return outcome

    def occupancy(self) -> int:
        """Number of pages currently cached."""
        return self._occupancy
