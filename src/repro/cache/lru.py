"""Page-level LRU — the paper's primary baseline.

Classic least-recently-used over individual 4 KB pages: hits promote the
page to the MRU head, eviction flushes the single LRU-tail page.  Every
eviction therefore frees exactly one page and issues exactly one flash
program — the behaviour the paper contrasts with batched block/request
eviction (Fig. 10).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.traces.model import IORequest, OpType
from repro.utils.dll import DLLNode, DoublyLinkedList

__all__ = ["PageNode", "LRUCache"]


class PageNode(DLLNode):
    """One cached page in a page-granularity policy's list."""

    __slots__ = ("lpn",)

    def __init__(self, lpn: int) -> None:
        # Base fields set directly: one of these is built per inserted
        # page, and the super().__init__() call doubled the cost.
        self.lpn = lpn
        self.prev = None
        self.next = None
        self.owner = None


class LRUCache(WriteBufferPolicy):
    """Least-recently-used write buffer at page granularity."""

    name = "lru"
    node_bytes = 12  # paper §4.2.5: 12 B per page node

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._list: DoublyLinkedList[PageNode] = DoublyLinkedList("lru")
        self._index: Dict[int, PageNode] = {}

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Fused fast path: one dict probe per page (the template's
        ``contains`` + ``_on_hit`` pair costs a second lookup), with the
        list operations bound once per request.  Must stay behaviourally
        identical to the template loop — the traced path still uses it,
        and the fast-path equivalence test pins the eviction sequence.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        index = self._index
        index_get = index.get
        lst = self._list
        move_to_head = lst.move_to_head
        push_head = lst.push_head
        pop_tail = lst.pop_tail
        capacity = self.capacity_pages
        is_write = request.op is OpType.WRITE
        flushes = outcome.flushes
        read_misses = outcome.read_miss_lpns
        hits = misses = inserted = 0
        occ = self._occupancy
        for lpn in request.pages():
            node = index_get(lpn)
            if node is not None:
                hits += 1
                move_to_head(node)
            elif is_write:
                misses += 1
                while occ >= capacity:
                    victim = pop_tail()
                    assert victim is not None, "evict called on empty cache"
                    del index[victim.lpn]
                    occ -= 1
                    flushes.append(FlushBatch([victim.lpn]))
                node = PageNode(lpn)
                index[lpn] = node
                push_head(node)
                occ += 1
                inserted += 1
            else:
                misses += 1
                read_misses.append(lpn)
        self._occupancy = occ
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        self._list.move_to_head(self._index[lpn])

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        node = PageNode(lpn)
        self._index[lpn] = node
        self._list.push_head(node)
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        victim = self._list.pop_tail()
        assert victim is not None, "evict called on empty cache"
        del self._index[victim.lpn]
        self._occupancy -= 1
        outcome.flushes.append(FlushBatch([victim.lpn]))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = [n.lpn for n in self._list]
        self._list.clear()
        self._index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        assert len(self._list) == len(self._index) == self._occupancy
        for node in self._list:
            assert self._index.get(node.lpn) is node
