"""Tenant-aware cache partitioning behind the CachePolicy interface.

A :class:`TenantPartitioner` wraps one inner replacement policy *per
tenant* and routes each request to its owner's policy by LBA zone
(:class:`repro.traces.tenants.TenantMap`).  Because the wrapper itself
conforms to :class:`CachePolicy`, every consumer of the interface —
replay loops, the SSD controller's drain path, power-loss salvage,
invariant checks — works unchanged; partitioning is purely a
composition decision made at policy-construction time.

Two quota disciplines are offered (``shared`` mode never constructs a
partitioner at all — the plain policy runs exactly as before, which is
what keeps single-tenant replays byte-identical):

``static``
    The capacity is split evenly; remainder pages go to the lowest
    tenant indices.  Full isolation, possibly wasteful: an idle
    tenant's quota sits empty.

``proportional``
    The capacity is split in proportion to per-tenant activity weights
    (largest-remainder rounding, ties broken by index, minimum one
    page each).  Heavy tenants get the DRAM they will actually use
    while light tenants keep a guaranteed floor.

Both disciplines are deterministic functions of ``(capacity, weights)``
— no RNG — so shard workers reconstruct identical partitions.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cache.base import AccessOutcome, CachePolicy, FlushBatch
from repro.cache.registry import create_policy
from repro.obs.tracer import Tracer
from repro.traces.model import IORequest
from repro.traces.tenants import TenantMap
from repro.utils.validation import require_positive

__all__ = ["TenantPartitioner", "split_capacity", "PARTITION_MODES"]

#: Quota disciplines a partitioner implements (``shared`` is the
#: absence of a partitioner, see module docstring).
PARTITION_MODES = ("static", "proportional")


def split_capacity(
    capacity_pages: int,
    n_tenants: int,
    mode: str = "static",
    weights: Optional[Sequence[float]] = None,
) -> Tuple[int, ...]:
    """Per-tenant page quotas summing exactly to ``capacity_pages``.

    ``static`` ignores ``weights``; ``proportional`` requires them.
    Every tenant receives at least one page, so ``capacity_pages`` must
    be at least ``n_tenants``.  Deterministic: largest-remainder
    rounding with ties broken by tenant index.
    """
    require_positive(capacity_pages, "capacity_pages")
    require_positive(n_tenants, "n_tenants")
    if capacity_pages < n_tenants:
        raise ValueError(
            f"cannot split {capacity_pages} pages across {n_tenants} tenants "
            "(every tenant needs at least one page)"
        )
    if mode == "static":
        base, rem = divmod(capacity_pages, n_tenants)
        return tuple(base + (1 if i < rem else 0) for i in range(n_tenants))
    if mode != "proportional":
        raise ValueError(
            f"unknown partition mode {mode!r}; choose one of {PARTITION_MODES}"
        )
    if weights is None or len(weights) != n_tenants:
        raise ValueError("proportional split needs one weight per tenant")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must not sum to zero")
    # Reserve the one-page floor, split the rest by weight with
    # largest-remainder rounding (index-ordered tie-break).
    spare = capacity_pages - n_tenants
    raw = [w / total * spare for w in weights]
    quotas = [1 + int(r) for r in raw]
    leftover = capacity_pages - sum(quotas)
    order = sorted(
        range(n_tenants), key=lambda i: (-(raw[i] - int(raw[i])), i)
    )
    for i in order[:leftover]:
        quotas[i] += 1
    return tuple(quotas)


class TenantPartitioner(CachePolicy):
    """One inner policy per tenant, routed by LBA zone.

    Built via :meth:`build` (by policy name, the normal path) or
    directly from pre-constructed inner policies (tests).  The
    aggregate view — occupancy, metadata, cached LPNs, drain — is the
    sum/union of the per-tenant views, so capacity/occupancy invariants
    hold for the whole exactly when they hold per tenant.
    """

    name = "tenant"
    # Partitioning adds no per-item metadata of its own; the inner
    # policies' nodes are counted through metadata_bytes() below.
    node_bytes = 0

    def __init__(
        self, inners: Sequence[CachePolicy], tenant_map: TenantMap
    ) -> None:
        if len(inners) != tenant_map.n_tenants:
            raise ValueError(
                f"{len(inners)} inner policies for "
                f"{tenant_map.n_tenants} tenants"
            )
        super().__init__(sum(p.capacity_pages for p in inners))
        self.tenant_map = tenant_map
        self._inners: Tuple[CachePolicy, ...] = tuple(inners)
        self._tenant_of = tenant_map.tenant_of

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        policy: str,
        capacity_pages: int,
        tenant_map: TenantMap,
        mode: str = "static",
        weights: Optional[Sequence[float]] = None,
        engine: Optional[str] = None,
        **policy_kwargs: object,
    ) -> "TenantPartitioner":
        """Construct the partitioned form of a registered policy."""
        quotas = split_capacity(
            capacity_pages, tenant_map.n_tenants, mode, weights
        )
        inners = [
            create_policy(policy, q, engine=engine, **policy_kwargs)
            for q in quotas
        ]
        return cls(inners, tenant_map)

    # ------------------------------------------------------------------
    # CachePolicy protocol — delegate by zone, aggregate the rest.
    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        return self._inners[self._tenant_of(request.lpn)].access(request)

    def occupancy(self) -> int:
        return sum(p.occupancy() for p in self._inners)

    def contains(self, lpn: int) -> bool:
        return self._inners[self._tenant_of(lpn)].contains(lpn)

    def cached_lpns(self) -> Iterator[int]:
        for p in self._inners:
            yield from p.cached_lpns()

    def metadata_nodes(self) -> int:
        return sum(p.metadata_nodes() for p in self._inners)

    def metadata_bytes(self) -> int:
        # Inner policies may have heterogeneous node sizes; sum their
        # own accounting instead of nodes * self.node_bytes.
        return sum(p.metadata_bytes() for p in self._inners)

    def flush_all(self) -> FlushBatch:
        lpns: List[int] = []
        for p in self._inners:
            lpns.extend(p.flush_all().lpns)
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        super().validate()
        for p in self._inners:
            p.validate()

    # ------------------------------------------------------------------
    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        super().set_tracer(tracer)
        for p in self._inners:
            p.set_tracer(tracer)

    # set_metrics is intentionally NOT forwarded to the inner policies:
    # each would register its own cache.occupancy_pages collector and
    # the gauges would fight.  The base-class registration (driven by
    # the aggregate occupancy/metadata accessors above) covers the
    # whole cache; per-tenant visibility comes from the accounting
    # layer's tenants.* gauges, not from the cache.

    # ------------------------------------------------------------------
    # Tenant-level introspection (experiments, tests, gauges).
    # ------------------------------------------------------------------
    @property
    def inners(self) -> Tuple[CachePolicy, ...]:
        """The per-tenant inner policies, indexed by tenant."""
        return self._inners

    def quotas(self) -> Tuple[int, ...]:
        """Per-tenant capacity quotas in pages."""
        return tuple(p.capacity_pages for p in self._inners)

    def tenant_occupancies(self) -> Tuple[int, ...]:
        """Pages currently cached per tenant."""
        return tuple(p.occupancy() for p in self._inners)
