"""FAB — Flash-Aware Buffer (Jo et al., TCE 2006).

Groups cached pages by their flash block (64 LPN-aligned pages) and, on
eviction, flushes the group holding the **largest number of pages**,
ignoring recency entirely.  Designed for portable-media-player style
sequential writes; the paper cites it as the canonical block-level
scheme whose size-only victim choice loses on random workloads (§2.1).

Victim selection is O(1) via count buckets: blocks are indexed by their
page count, and the maximum occupied count is tracked incrementally.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.traces.model import IORequest
from repro.utils.dll import DLLNode, DoublyLinkedList

__all__ = ["FABCache"]


class _BlockGroup(DLLNode):
    __slots__ = ("lbn", "pages")

    def __init__(self, lbn: int) -> None:
        super().__init__()
        self.lbn = lbn
        self.pages: Set[int] = set()


class FABCache(WriteBufferPolicy):
    """Biggest-group-first block-level write buffer."""

    name = "fab"
    node_bytes = 24  # block node, as in the paper's overhead model

    def __init__(self, capacity_pages: int, pages_per_block: int = 64) -> None:
        super().__init__(capacity_pages)
        self.pages_per_block = pages_per_block
        self._blocks: Dict[int, _BlockGroup] = {}  # lbn -> group
        self._page_index: Dict[int, _BlockGroup] = {}  # lpn -> group
        # count -> LRU-ordered groups with that many pages; eviction pops
        # from the largest occupied count.
        self._buckets: Dict[int, DoublyLinkedList[_BlockGroup]] = {}
        self._max_count = 0

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._page_index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._page_index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def _bucket(self, count: int) -> DoublyLinkedList[_BlockGroup]:
        bucket = self._buckets.get(count)
        if bucket is None:
            bucket = DoublyLinkedList(f"fab-c{count}")
            self._buckets[count] = bucket
        return bucket

    def _rebucket(self, group: _BlockGroup, old_count: int) -> None:
        if old_count:
            self._buckets[old_count].remove(group)
        new_count = len(group.pages)
        self._bucket(new_count).push_head(group)
        if new_count > self._max_count:
            self._max_count = new_count

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        # FAB considers only group size; hits refresh nothing.
        pass

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        lbn = lpn // self.pages_per_block
        group = self._blocks.get(lbn)
        if group is None:
            group = _BlockGroup(lbn)
            self._blocks[lbn] = group
            old_count = 0
        else:
            old_count = len(group.pages)
        group.pages.add(lpn)
        self._page_index[lpn] = group
        self._rebucket(group, old_count)
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        while self._max_count > 0 and not self._buckets.get(
            self._max_count, DoublyLinkedList()
        ):
            self._max_count -= 1
        assert self._max_count > 0, "evict called on empty cache"
        victim = self._buckets[self._max_count].pop_tail()
        assert victim is not None
        lpns = sorted(victim.pages)
        for lpn in lpns:
            del self._page_index[lpn]
        del self._blocks[victim.lbn]
        self._occupancy -= len(lpns)
        outcome.flushes.append(FlushBatch(lpns, pin_key=victim.lbn))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self._page_index.keys())
        self._blocks.clear()
        self._page_index.clear()
        self._buckets.clear()
        self._max_count = 0
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        total = 0
        for lbn, group in self._blocks.items():
            assert group.pages, f"empty group {lbn} retained"
            assert group.owner is self._buckets[len(group.pages)]
            for lpn in group.pages:
                assert lpn // self.pages_per_block == lbn
                assert self._page_index[lpn] is group
            total += len(group.pages)
        assert total == self._occupancy == len(self._page_index)
