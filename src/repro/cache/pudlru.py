"""PUD-LRU — Predicted-Update-Distance LRU (Hu et al., MASCOTS 2010).

The last of the paper's cited block-level write-buffer schemes (§2.1,
reference [21]).  PUD-LRU manages the buffer at flash-block granularity
and partitions blocks by *update frequency vs recency*: blocks updated
rarely and long ago are "erase-efficient" victims — flushing them wholly
costs little future rewriting — while frequently-updated blocks stay.

This implementation scores each block with its predicted update
distance ``(clock - last_update) / update_count`` and evicts the
maximum (least frequently *and* least recently updated), flushing the
whole block to its block-mapped target (``pin_key``), like BPLRU.  The
original's two-group threshold partition reduces to this max-score rule
when the threshold adapts, so we implement the rule directly and
document the simplification.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.traces.model import IORequest
from repro.utils.dll import DLLNode, DoublyLinkedList

__all__ = ["PUDLRUCache"]


class _PUDBlock(DLLNode):
    __slots__ = ("lbn", "pages", "update_count", "last_update")

    def __init__(self, lbn: int, now: int) -> None:
        super().__init__()
        self.lbn = lbn
        self.pages: Set[int] = set()
        self.update_count = 1
        self.last_update = now

    def update_distance(self, clock: int) -> float:
        """Predicted update distance: large = cold = evict first."""
        return max(1, clock - self.last_update) / self.update_count


class PUDLRUCache(WriteBufferPolicy):
    """Erase-efficiency-aware block-level write buffer."""

    name = "pudlru"
    node_bytes = 24  # block node, as in the paper's overhead model

    def __init__(self, capacity_pages: int, pages_per_block: int = 64) -> None:
        super().__init__(capacity_pages)
        self.pages_per_block = pages_per_block
        self._list: DoublyLinkedList[_PUDBlock] = DoublyLinkedList("pudlru")
        self._blocks: Dict[int, _PUDBlock] = {}
        self._page_index: Dict[int, _PUDBlock] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._page_index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._page_index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def _touch(self, block: _PUDBlock) -> None:
        block.update_count += 1
        block.last_update = self._clock
        self._list.move_to_head(block)

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        self._clock += 1
        self._touch(self._page_index[lpn])

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        self._clock += 1
        lbn = lpn // self.pages_per_block
        block = self._blocks.get(lbn)
        if block is None:
            block = _PUDBlock(lbn, self._clock)
            self._blocks[lbn] = block
            self._list.push_head(block)
        else:
            self._touch(block)
        block.pages.add(lpn)
        self._page_index[lpn] = block
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        # Scan for the maximum predicted update distance.  The candidate
        # set is every resident block — the documented O(blocks) cost;
        # resident block counts are small (pages/blocks >= 1).
        victim = None
        worst = -1.0
        for block in self._list:
            score = block.update_distance(self._clock)
            if score > worst:
                worst = score
                victim = block
        assert victim is not None, "evict called on empty cache"
        lpns = sorted(victim.pages)
        for lpn in lpns:
            del self._page_index[lpn]
        del self._blocks[victim.lbn]
        self._list.remove(victim)
        self._occupancy -= len(lpns)
        outcome.flushes.append(FlushBatch(lpns, pin_key=victim.lbn))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self._page_index.keys())
        self._list.clear()
        self._blocks.clear()
        self._page_index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        total = 0
        for block in self._list:
            assert self._blocks[block.lbn] is block
            assert block.pages, f"empty block {block.lbn} retained"
            for lpn in block.pages:
                assert lpn // self.pages_per_block == block.lbn
                assert self._page_index[lpn] is block
            total += len(block.pages)
        assert total == self._occupancy == len(self._page_index)
