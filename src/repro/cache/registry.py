"""Policy registry: build any cache scheme by name.

The replay driver, the experiments and the CLI all refer to policies by
their string name (``"lru"``, ``"bplru"``, ``"vbbms"``, ``"reqblock"``,
...), so adding a scheme means adding one entry here (or calling
:func:`register_policy` from user code).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.cache.base import CachePolicy
from repro.cache.bplru import BPLRUCache
from repro.cache.cflru import CFLRUCache
from repro.cache.ecr import ECRCache
from repro.cache.fab import FABCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.pudlru import PUDLRUCache
from repro.cache.vbbms import VBBMSCache

__all__ = [
    "register_policy",
    "create_policy",
    "available_policies",
    "policy_class",
    "PAPER_COMPARISON",
]

_REGISTRY: Dict[str, Type[CachePolicy]] = {}

#: The four schemes compared throughout the paper's evaluation, in the
#: order its figures list them.
PAPER_COMPARISON: List[str] = ["lru", "bplru", "vbbms", "reqblock"]


def register_policy(cls: Type[CachePolicy]) -> Type[CachePolicy]:
    """Register a policy class under its ``name``; usable as a decorator."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"policy name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def policy_class(name: str) -> Type[CachePolicy]:
    """The class registered under ``name`` (KeyError with hint otherwise)."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown cache policy {name!r}; known: {known}") from None


def create_policy(name: str, capacity_pages: int, **kwargs) -> CachePolicy:
    """Instantiate the policy registered under ``name``."""
    return policy_class(name)(capacity_pages, **kwargs)


def available_policies() -> List[str]:
    """Sorted names of every registered policy."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def _ensure_builtin() -> None:
    """Register the built-in schemes lazily (avoids import cycles: the
    Req-block policy lives in :mod:`repro.core`, which imports this
    package's base classes)."""
    if "reqblock" in _REGISTRY:
        return
    from repro.core.policy import ReqBlockCache

    # Importing the extension module registers "reqblock-adaptive" as a
    # side effect.
    import repro.core.adaptive  # noqa: F401

    for cls in (
        LRUCache,
        FIFOCache,
        LFUCache,
        CFLRUCache,
        ECRCache,
        FABCache,
        BPLRUCache,
        PUDLRUCache,
        VBBMSCache,
        ReqBlockCache,
    ):
        register_policy(cls)
