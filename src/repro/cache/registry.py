"""Policy registry: build any cache scheme by name.

The replay driver, the experiments and the CLI all refer to policies by
their string name (``"lru"``, ``"bplru"``, ``"vbbms"``, ``"reqblock"``,
...), so adding a scheme means adding one entry here (or calling
:func:`register_policy` from user code).

Policies may come in two *engines*: the reference object-per-node
implementation and an arena (flat-array) implementation registered
under ``<name>-arena``.  :func:`create_policy` takes an ``engine``
argument (falling back to the ``REPRO_ENGINE`` environment variable,
default ``"object"``) and transparently resolves a base name to its
arena variant when one exists — policies without an arena variant run
their object implementation under either engine.  See
``docs/arena.md``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

from repro.cache.base import CachePolicy
from repro.cache.bplru import BPLRUCache
from repro.cache.cflru import CFLRUCache
from repro.cache.ecr import ECRCache
from repro.cache.fab import FABCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.pudlru import PUDLRUCache
from repro.cache.vbbms import VBBMSCache

__all__ = [
    "register_policy",
    "create_policy",
    "available_policies",
    "policy_class",
    "resolve_policy",
    "PAPER_COMPARISON",
    "ENGINES",
    "ARENA_SUFFIX",
]

_REGISTRY: Dict[str, Type[CachePolicy]] = {}

#: The four schemes compared throughout the paper's evaluation, in the
#: order its figures list them.
PAPER_COMPARISON: List[str] = ["lru", "bplru", "vbbms", "reqblock"]

#: The selectable data-plane engines (see docs/arena.md).
ENGINES = ("object", "arena")

#: Naming convention linking a policy to its arena implementation.
ARENA_SUFFIX = "-arena"


def register_policy(cls: Type[CachePolicy]) -> Type[CachePolicy]:
    """Register a policy class under its ``name``; usable as a decorator."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"policy name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def policy_class(name: str) -> Type[CachePolicy]:
    """The class registered under ``name`` (KeyError with hint otherwise)."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown cache policy {name!r}; known: {known}") from None


def resolve_policy(name: str, engine: Optional[str] = None) -> str:
    """Map a policy name through the engine switch.

    ``engine=None`` consults the ``REPRO_ENGINE`` environment variable
    and defaults to ``"object"``.  Under the arena engine a base name
    resolves to ``<name>-arena`` when that variant is registered;
    explicit ``*-arena`` names and policies without an arena variant
    pass through unchanged.
    """
    _ensure_builtin()
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "object"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}"
        )
    if engine == "arena" and not name.endswith(ARENA_SUFFIX):
        candidate = name + ARENA_SUFFIX
        if candidate in _REGISTRY:
            return candidate
    return name


def create_policy(
    name: str, capacity_pages: int, engine: Optional[str] = None, **kwargs
) -> CachePolicy:
    """Instantiate the policy registered under ``name``.

    ``engine`` selects the data-plane implementation (see
    :func:`resolve_policy`); policy keyword arguments pass through to
    the class constructor.
    """
    return policy_class(resolve_policy(name, engine))(capacity_pages, **kwargs)


def available_policies() -> List[str]:
    """Sorted names of every registered policy."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def _ensure_builtin() -> None:
    """Register the built-in schemes lazily (avoids import cycles: the
    Req-block policy lives in :mod:`repro.core`, which imports this
    package's base classes)."""
    if "reqblock" in _REGISTRY:
        return
    from repro.cache.arena import BPLRUArenaCache, LRUArenaCache, VBBMSArenaCache
    from repro.core.arena import ReqBlockArenaCache
    from repro.core.policy import ReqBlockCache

    # Importing the extension module registers "reqblock-adaptive" as a
    # side effect.
    import repro.core.adaptive  # noqa: F401

    for cls in (
        LRUCache,
        FIFOCache,
        LFUCache,
        CFLRUCache,
        ECRCache,
        FABCache,
        BPLRUCache,
        PUDLRUCache,
        VBBMSCache,
        ReqBlockCache,
        LRUArenaCache,
        BPLRUArenaCache,
        VBBMSArenaCache,
        ReqBlockArenaCache,
    ):
        register_policy(cls)
