"""VBBMS — Virtual-Block-based Buffer Management Scheme (Du et al., TCE 2019).

The paper's strongest baseline.  The cache is statically split into a
**random region** and a **sequential region** at a 3:2 ratio (paper
§4.1); write requests are routed by a sequential-stream detector — a
request is sequential when it *continues* a recently observed stream
(its first LPN is a tracked stream end) or is unambiguously bulk
(``seq_threshold_pages`` or larger).  Everything else — including
rewrites of recently written extents, which repeat rather than extend a
stream — is random.  Pages are grouped into LPN-aligned **virtual
blocks** of 3 pages (random region) and 4 pages (sequential region).
The random region replaces virtual blocks by LRU, the sequential region
by FIFO; an evicted virtual block is flushed in batch (striped across
channels by the controller — VBBMS virtual blocks are not
block-mapped).

Each region evicts against its own capacity, so a burst of sequential
writes can never wash the hot random pages out of the cache — the
behaviour that makes VBBMS competitive with Req-block on most traces
(Fig. 9).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.cache.base import AccessOutcome, CachePolicy, FlushBatch
from repro.obs.events import CacheHit, CacheMiss, Evict, Insert
from repro.traces.model import IORequest, OpType
from repro.utils.dll import DLLNode, DoublyLinkedList
from repro.utils.validation import require_in_range, require_positive

__all__ = ["VBBMSCache"]


class _VirtualBlock(DLLNode):
    __slots__ = ("vbn", "pages")

    def __init__(self, vbn: int) -> None:
        # Base fields set directly: one node per populated virtual
        # block, and the super().__init__() call doubled the cost.
        self.vbn = vbn
        self.pages: Set[int] = set()
        self.prev = None
        self.next = None
        self.owner = None


class _Region:
    """One of the two cache partitions: a DLL of virtual blocks."""

    __slots__ = (
        "name",
        "capacity",
        "vb_pages",
        "use_lru",
        "list",
        "vbs",
        "occupancy",
        "evict_reason",
    )

    def __init__(self, name: str, capacity: int, vb_pages: int, use_lru: bool) -> None:
        self.name = name
        self.capacity = capacity
        self.vb_pages = vb_pages
        self.use_lru = use_lru
        self.list: DoublyLinkedList[_VirtualBlock] = DoublyLinkedList(name)
        self.vbs: Dict[int, _VirtualBlock] = {}
        self.occupancy = 0
        # Precomputed FlushBatch reason (one eviction happens per ~3-4
        # inserted pages; the f-string per eviction showed in profiles).
        self.evict_reason = f"{name}-capacity"


class VBBMSCache(CachePolicy):
    """Two-region virtual-block write buffer (LRU random + FIFO sequential)."""

    name = "vbbms"
    node_bytes = 24  # virtual block node == block node (paper §4.2.5)

    def __init__(
        self,
        capacity_pages: int,
        random_fraction: float = 0.6,  # the paper's 3:2 split
        random_vb_pages: int = 3,
        seq_vb_pages: int = 4,
        seq_threshold_pages: int = 16,
        stream_table_size: int = 32,
    ) -> None:
        super().__init__(capacity_pages)
        if capacity_pages < 2:
            raise ValueError(
                "VBBMS partitions the cache into two regions and needs "
                f"at least 2 pages of capacity, got {capacity_pages}"
            )
        require_in_range(random_fraction, "random_fraction", 0.1, 0.9)
        require_positive(random_vb_pages, "random_vb_pages")
        require_positive(seq_vb_pages, "seq_vb_pages")
        require_positive(seq_threshold_pages, "seq_threshold_pages")
        require_positive(stream_table_size, "stream_table_size")
        # Both regions get at least one page and the split never exceeds
        # the total capacity (the max(1, ...) floor could otherwise
        # overshoot on tiny caches).
        random_cap = min(
            capacity_pages - 1, max(1, int(capacity_pages * random_fraction))
        )
        seq_cap = capacity_pages - random_cap
        self.seq_threshold_pages = seq_threshold_pages
        self.stream_table_size = stream_table_size
        self.random = _Region("vbbms-random", random_cap, random_vb_pages, use_lru=True)
        self.seq = _Region("vbbms-seq", seq_cap, seq_vb_pages, use_lru=False)
        #: lpn -> region holding it (pages live in exactly one region).
        self._page_region: Dict[int, _Region] = {}
        #: Recently observed stream end LPNs (insertion-ordered, bounded).
        self._stream_ends: Dict[int, None] = {}

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of pages currently cached."""
        return self.random.occupancy + self.seq.occupancy

    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._page_region

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._page_region.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self.random.vbs) + len(self.seq.vbs)

    # ------------------------------------------------------------------
    def classify(self, request: IORequest) -> _Region:
        """Route a write request through the sequential-stream detector.

        Sequential = continues a tracked stream, or is large enough to
        be unambiguous bulk I/O.  Extent *rewrites* repeat addresses
        instead of extending them, so they classify as random — exactly
        the behaviour that lets large hot rewrites wash the random
        region and gives Req-block its edge on src1_2/proj_0 (Fig. 9).
        """
        is_seq = (
            request.lpn in self._stream_ends
            or request.npages >= self.seq_threshold_pages
        )
        self._note_stream(request)
        return self.seq if is_seq else self.random

    def _note_stream(self, request: IORequest) -> None:
        """Record the request's end LPN as a potential stream tail."""
        self._stream_ends.pop(request.lpn, None)  # consumed/extended
        self._stream_ends[request.end_lpn] = None
        while len(self._stream_ends) > self.stream_table_size:
            # Discard the oldest tracked stream (dict preserves insertion).
            oldest = next(iter(self._stream_ends))
            del self._stream_ends[oldest]

    def access(self, request: IORequest) -> AccessOutcome:
        """Serve one request through the cache (see CachePolicy).

        Tracing runs in ``_access_traced`` (mirror loop) so the common
        disabled path pays one branch per request.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        is_write = request.op is OpType.WRITE
        page_region = self._page_region
        region_get = page_region.get
        evict_from = self._evict_from
        read_misses = outcome.read_miss_lpns
        hits = misses = inserted = 0
        if is_write:
            # The insert target is fixed for the whole request, so its
            # region fields are bound once and ``_insert_into`` is
            # inlined below (the traced path still runs the method).
            target = self.classify(request)
            t_cap = target.capacity
            t_vb_pages = target.vb_pages
            t_use_lru = target.use_lru
            t_vbs = target.vbs
            t_vbs_get = t_vbs.get
            t_list = target.list
            t_push_head = t_list.push_head
            t_move_to_head = t_list.move_to_head
        for lpn in request.pages():
            region = region_get(lpn)
            if region is not None:
                hits += 1
                # Only the random region tracks recency (LRU); the FIFO
                # sequential region leaves hit blocks in place.
                if region.use_lru:
                    vb = region.vbs[lpn // region.vb_pages]
                    region.list.move_to_head(vb)
            elif is_write:
                misses += 1
                while target.occupancy >= t_cap:
                    evict_from(target, outcome)
                vbn = lpn // t_vb_pages
                vb = t_vbs_get(vbn)
                if vb is None:
                    vb = _VirtualBlock(vbn)
                    t_vbs[vbn] = vb
                    t_push_head(vb)
                elif t_use_lru:
                    t_move_to_head(vb)
                vb.pages.add(lpn)
                target.occupancy += 1
                page_region[lpn] = target
                inserted += 1
            else:
                misses += 1
                read_misses.append(lpn)
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _access_traced(self, request: IORequest) -> AccessOutcome:
        """The access loop with event emission; mirrors ``access``."""
        outcome = AccessOutcome()
        tracer = self.tracer
        req_id = self._req_seq
        self._req_seq += 1
        target = self.classify(request) if request.is_write else None
        for lpn in request.pages():
            self._event_clock += 1
            region = self._page_region.get(lpn)
            if region is not None:
                outcome.page_hits += 1
                tracer.emit(CacheHit(self._event_clock, req_id, lpn, region.name))
                if region.use_lru:
                    vb = region.vbs[lpn // region.vb_pages]
                    region.list.move_to_head(vb)
                continue
            outcome.page_misses += 1
            tracer.emit(CacheMiss(self._event_clock, req_id, lpn, request.is_write))
            if request.is_read:
                outcome.read_miss_lpns.append(lpn)
                continue
            assert target is not None
            while target.occupancy >= target.capacity:
                n_flushes = len(outcome.flushes)
                self._evict_from(target, outcome)
                for batch in outcome.flushes[n_flushes:]:
                    tracer.emit(
                        Evict(
                            self._event_clock,
                            req_id,
                            tuple(batch.lpns),
                            target.name,
                        )
                    )
            self._insert_into(target, lpn)
            outcome.inserted_pages += 1
            tracer.emit(Insert(self._event_clock, req_id, lpn, target.name))
        return outcome

    # ------------------------------------------------------------------
    def _insert_into(self, region: _Region, lpn: int) -> None:
        vbn = lpn // region.vb_pages
        vb = region.vbs.get(vbn)
        if vb is None:
            vb = _VirtualBlock(vbn)
            region.vbs[vbn] = vb
            region.list.push_head(vb)
        elif region.use_lru:
            region.list.move_to_head(vb)
        vb.pages.add(lpn)
        region.occupancy += 1
        self._page_region[lpn] = region

    def _evict_from(self, region: _Region, outcome: AccessOutcome) -> None:
        victim = region.list.pop_tail()
        assert victim is not None, f"evict from empty region {region.name}"
        lpns = sorted(victim.pages)
        for lpn in lpns:
            del self._page_region[lpn]
        del region.vbs[victim.vbn]
        region.occupancy -= len(lpns)
        outcome.flushes.append(FlushBatch(lpns, reason=region.evict_reason))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self._page_region.keys())
        for region in (self.random, self.seq):
            region.list.clear()
            region.vbs.clear()
            region.occupancy = 0
        self._page_region.clear()
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        # Regions have individual capacities; the global bound still holds.
        assert self.occupancy() <= self.capacity_pages
        for region in (self.random, self.seq):
            region.list.validate()
            total = 0
            for vb in region.list:
                assert region.vbs[vb.vbn] is vb
                assert vb.pages, "empty virtual block retained"
                for lpn in vb.pages:
                    assert lpn // region.vb_pages == vb.vbn
                    assert self._page_region[lpn] is region
                total += len(vb.pages)
            assert total == region.occupancy
            assert region.occupancy <= region.capacity
