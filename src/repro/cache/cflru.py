"""CFLRU — Clean-First LRU (Park et al., CASES 2006).

The cache holds both dirty pages (buffered writes) and clean pages
(read-miss fills).  The LRU list is split into a *working region* (the
recent part) and a *clean-first region* (the trailing
``window_fraction`` of capacity).  On eviction, the least-recently-used
**clean** page inside the clean-first region is dropped for free (no
flash write); only when the window holds no clean page is the dirty LRU
tail flushed.

This is the only policy in the suite that caches read data, matching its
original design; the paper cites it as the canonical page-level scheme
(§2.1).  Because clean drops produce no :class:`FlushBatch`, CFLRU
trades hit ratio for reduced flash write traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.base import AccessOutcome, CachePolicy, FlushBatch
from repro.obs.events import CacheHit, CacheMiss, Evict, Insert
from repro.traces.model import IORequest
from repro.utils.dll import DLLNode, DoublyLinkedList
from repro.utils.validation import require_in_range

__all__ = ["CFLRUCache"]


class _CFLRUNode(DLLNode):
    __slots__ = ("lpn", "dirty")

    def __init__(self, lpn: int, dirty: bool) -> None:
        super().__init__()
        self.lpn = lpn
        self.dirty = dirty


class CFLRUCache(CachePolicy):
    """Clean-first LRU over pages, caching both reads and writes."""

    name = "cflru"
    node_bytes = 12

    def __init__(self, capacity_pages: int, window_fraction: float = 0.5) -> None:
        super().__init__(capacity_pages)
        require_in_range(window_fraction, "window_fraction", 0.0, 1.0)
        self.window_fraction = window_fraction
        self._list: DoublyLinkedList[_CFLRUNode] = DoublyLinkedList("cflru")
        self._index: Dict[int, _CFLRUNode] = {}

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of pages currently cached."""
        return len(self._index)

    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Serve one request through the cache (see CachePolicy).

        Tracing runs in ``_access_traced`` (mirror loop) so the common
        disabled path pays one branch per request.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        for lpn in request.pages():
            node = self._index.get(lpn)
            if node is not None:
                outcome.page_hits += 1
                if request.is_write:
                    node.dirty = True  # clean page overwritten in place
                self._list.move_to_head(node)
                continue
            outcome.page_misses += 1
            if request.is_read:
                outcome.read_miss_lpns.append(lpn)
            while len(self._index) >= self.capacity_pages:
                self._evict_one(outcome)
            self._insert(lpn, dirty=request.is_write)
            if request.is_write:
                outcome.inserted_pages += 1
        return outcome

    def _access_traced(self, request: IORequest) -> AccessOutcome:
        """The access loop with event emission; mirrors ``access``."""
        outcome = AccessOutcome()
        tracer = self.tracer
        req_id = self._req_seq
        self._req_seq += 1
        for lpn in request.pages():
            self._event_clock += 1
            node = self._index.get(lpn)
            if node is not None:
                outcome.page_hits += 1
                tracer.emit(CacheHit(self._event_clock, req_id, lpn, self.name))
                if request.is_write:
                    node.dirty = True  # clean page overwritten in place
                self._list.move_to_head(node)
                continue
            outcome.page_misses += 1
            tracer.emit(CacheMiss(self._event_clock, req_id, lpn, request.is_write))
            if request.is_read:
                outcome.read_miss_lpns.append(lpn)
            while len(self._index) >= self.capacity_pages:
                n_flushes = len(outcome.flushes)
                self._evict_one(outcome)
                # Clean drops produce no FlushBatch, hence no Evict
                # event — only flushed batches reach flash.
                for batch in outcome.flushes[n_flushes:]:
                    tracer.emit(
                        Evict(
                            self._event_clock,
                            req_id,
                            tuple(batch.lpns),
                            self.name,
                        )
                    )
            self._insert(lpn, dirty=request.is_write)
            if request.is_write:
                outcome.inserted_pages += 1
            tracer.emit(Insert(self._event_clock, req_id, lpn, self.name))
        return outcome

    def _insert(self, lpn: int, dirty: bool) -> None:
        node = _CFLRUNode(lpn, dirty)
        self._index[lpn] = node
        self._list.push_head(node)

    def _evict_one(self, outcome: AccessOutcome) -> None:
        window = max(1, int(self.capacity_pages * self.window_fraction))
        # Search the clean-first region (tail-ward window) for a clean page.
        node = self._list.tail
        scanned = 0
        while node is not None and scanned < window:
            if not node.dirty:
                self._list.remove(node)
                del self._index[node.lpn]
                return  # clean drop: no flash write
            node = node.prev
            scanned += 1
        victim = self._list.pop_tail()
        assert victim is not None, "evict called on empty cache"
        del self._index[victim.lpn]
        outcome.flushes.append(FlushBatch([victim.lpn]))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        dirty = [n.lpn for n in self._list if n.dirty]
        self._list.clear()
        self._index.clear()
        return FlushBatch(dirty, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        assert len(self._list) == len(self._index)
