"""ECR — Eviction-Cost-aware Replacement (Chen et al., CCPE 2021).

A cited page-based scheme (paper §2.1, reference [10]): instead of
blindly evicting the LRU page, ECR "chooses the victim page which
requires the shortest waiting time to be flushed onto the flash cell,
by referring to the length of I/O queues of SSD channels".

This is the one baseline that needs *device feedback* — policies are
otherwise device-free.  The coupling is a single narrow protocol:
:class:`DeviceFeedback` exposes ``flush_backlog_ms(lpn)``, the current
queueing delay a flush of ``lpn`` would face.  The controller injects
an adapter at construction (see ``SSDController``); without feedback
(cache-only replay), ECR degenerates to plain LRU, which the tests pin.

Victim selection: among the ``window`` least-recently-used pages, evict
the one whose flush backlog is smallest (ties broken toward the LRU
end).  The backlog estimate assumes the page's flush lands on plane
``lpn % n_planes`` — ECR presupposes a known flush target, whereas our
page-level FTL stripes dynamically; the approximation and its effect
are documented in the module tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Protocol

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.cache.lru import PageNode
from repro.traces.model import IORequest
from repro.utils.dll import DoublyLinkedList
from repro.utils.validation import require_positive

__all__ = ["DeviceFeedback", "ECRCache"]


class DeviceFeedback(Protocol):
    """What a cost-aware policy may ask the device."""

    def flush_backlog_ms(self, lpn: int) -> float:
        """Estimated queueing delay (ms) a flush of ``lpn`` faces now."""
        ...


class ECRCache(WriteBufferPolicy):
    """Eviction-cost-aware page-level write buffer."""

    name = "ecr"
    node_bytes = 12  # page node, like LRU

    def __init__(self, capacity_pages: int, window: int = 16) -> None:
        """
        Parameters
        ----------
        window:
            How many LRU-end pages are considered per eviction; 1 makes
            ECR identical to LRU regardless of feedback.
        """
        super().__init__(capacity_pages)
        require_positive(window, "window")
        self.window = window
        self._list: DoublyLinkedList[PageNode] = DoublyLinkedList("ecr")
        self._index: Dict[int, PageNode] = {}
        self._feedback: Optional[DeviceFeedback] = None

    # ------------------------------------------------------------------
    def set_device_feedback(self, feedback: DeviceFeedback) -> None:
        """Attach the controller's backlog oracle (called once at setup)."""
        self._feedback = feedback

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def _on_hit(self, lpn: int, request: IORequest) -> None:
        self._list.move_to_head(self._index[lpn])

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        node = PageNode(lpn)
        self._index[lpn] = node
        self._list.push_head(node)
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        victim = self._select_victim()
        self._list.remove(victim)
        del self._index[victim.lpn]
        self._occupancy -= 1
        outcome.flushes.append(FlushBatch([victim.lpn]))

    def _select_victim(self) -> PageNode:
        tail = self._list.tail
        assert tail is not None, "evict called on empty cache"
        if self._feedback is None or self.window == 1:
            return tail
        best = tail
        best_cost = self._feedback.flush_backlog_ms(tail.lpn)
        node = tail.prev
        scanned = 1
        while node is not None and scanned < self.window:
            cost = self._feedback.flush_backlog_ms(node.lpn)
            if cost < best_cost:
                best_cost = cost
                best = node
            node = node.prev
            scanned += 1
        return best  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = [n.lpn for n in self._list]
        self._list.clear()
        self._index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._list.validate()
        assert len(self._list) == len(self._index) == self._occupancy
