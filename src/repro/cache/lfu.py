"""Page-level LFU write buffer with O(1) operations.

Least-frequently-used with LRU tie-breaking, implemented with the
classic frequency-bucket structure: a list of frequency buckets, each
holding an LRU-ordered list of pages with that access count.  Eviction
takes the LRU tail of the lowest-frequency bucket; a hit moves the page
up one bucket.  All operations are O(1).

Included because the paper positions Req-block against the LRU/LFU
spectrum (reference [24]); it also serves as a frequency-only ablation
point against Req-block's Eq. 1, which combines frequency, size and age.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.traces.model import IORequest
from repro.utils.dll import DLLNode, DoublyLinkedList

__all__ = ["LFUCache"]


class _LFUNode(DLLNode):
    __slots__ = ("lpn", "freq")

    def __init__(self, lpn: int) -> None:
        super().__init__()
        self.lpn = lpn
        self.freq = 1


class LFUCache(WriteBufferPolicy):
    """Least-frequently-used write buffer (LRU tie-break)."""

    name = "lfu"
    node_bytes = 12

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self._index: Dict[int, _LFUNode] = {}
        self._buckets: Dict[int, DoublyLinkedList[_LFUNode]] = {}
        self._min_freq = 0

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def _bucket(self, freq: int) -> DoublyLinkedList[_LFUNode]:
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = DoublyLinkedList(f"lfu-f{freq}")
            self._buckets[freq] = bucket
        return bucket

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        node = self._index[lpn]
        old = self._buckets[node.freq]
        old.remove(node)
        if not old and node.freq == self._min_freq:
            self._min_freq += 1
        node.freq += 1
        self._bucket(node.freq).push_head(node)

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        node = _LFUNode(lpn)
        self._index[lpn] = node
        self._bucket(1).push_head(node)
        self._min_freq = 1
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        while self._min_freq not in self._buckets or not self._buckets[self._min_freq]:
            self._min_freq += 1
        victim = self._buckets[self._min_freq].pop_tail()
        assert victim is not None
        del self._index[victim.lpn]
        self._occupancy -= 1
        outcome.flushes.append(FlushBatch([victim.lpn]))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = list(self._index.keys())
        self._index.clear()
        self._buckets.clear()
        self._min_freq = 0
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        total = 0
        for freq, bucket in self._buckets.items():
            bucket.validate()
            for node in bucket:
                assert node.freq == freq
                total += 1
        assert total == len(self._index) == self._occupancy
