"""Arena-native write-buffer policies: LRU, BPLRU and VBBMS.

These are drop-in ``*-arena`` variants of the object-per-node policies
in :mod:`repro.cache.lru`, :mod:`repro.cache.bplru` and
:mod:`repro.cache.vbbms`, rebuilt on :class:`repro.utils.index_list
.IndexArena`: list links live in parallel ``prev``/``next``/``owner``
int arrays, and per-slot policy metadata (page LPN, block bitmask,
last-offset, in-order flag) lives in flat columns instead of node
attributes.  Page membership of a block/virtual block is a bitmask
column rather than a per-page ``set`` + per-page index dict, which is
where most of the speedup comes from: inserting or evicting a page
touches two array cells instead of allocating nodes and churning
dicts.

Behaviour is pinned byte-identical to the object implementations —
same hit/miss/eviction decisions, same ``FlushBatch`` ordering
(ascending-bit iteration over an aligned bitmask *is* ``sorted()``),
same traced event stream — by the object-vs-arena lockstep suite in
``tests/sim/test_optimized_equivalence.py`` and the shared property
and fuzz suites.  Select them explicitly by name or via the engine
switch (``create_policy(..., engine="arena")`` / ``REPRO_ENGINE=arena``,
see ``docs/arena.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.cache.base import AccessOutcome, FlushBatch, WriteBufferPolicy
from repro.cache.vbbms import VBBMSCache, _Region
from repro.traces.model import IORequest, OpType
from repro.utils.index_list import IndexArena

__all__ = ["LRUArenaCache", "BPLRUArenaCache", "VBBMSArenaCache"]


class LRUArenaCache(WriteBufferPolicy):
    """Page-level LRU over an index arena: one slot per cached page.

    The arena is sized exactly ``capacity_pages`` — the eviction loop
    keeps occupancy below capacity before every insert, so the free
    stack can never run dry and the fused loop allocates by a bare
    ``pop()``.
    """

    name = "lru-arena"
    node_bytes = 12  # same replacement metadata as the object LRU

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        arena = IndexArena(capacity_pages)
        self._arena = arena
        self._list = arena.new_list("lru")
        self._lpn: List[int] = arena.new_column(fill=-1)
        self._index: Dict[int, int] = {}  # lpn -> slot

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        return lpn in self._index

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        return self._index.keys()

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._index)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Fused fast path: the whole LRU protocol is pointer surgery on
        four flat arrays, with head/tail/len carried in locals for the
        duration of the request.  Must stay behaviourally identical to
        the template loop (the traced path runs it via the hooks); the
        lockstep equivalence suite pins the eviction sequence against
        the object LRU.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        index = self._index
        index_get = index.get
        arena = self._arena
        aprev = arena.prev
        anext = arena.next
        aowner = arena.owner
        free_stack = arena._free
        free_pop = free_stack.pop
        free_push = free_stack.append
        lpn_col = self._lpn
        lst = self._list
        lid = lst.lid
        head = lst.head
        tail = lst.tail
        length = lst._len
        capacity = self.capacity_pages
        is_write = request.op is OpType.WRITE
        flushes = outcome.flushes
        read_misses = outcome.read_miss_lpns
        hits = misses = inserted = 0
        occ = self._occupancy
        for lpn in request.pages():
            s = index_get(lpn, -1)
            if s >= 0:
                hits += 1
                if s != head:
                    # Unlink (s is not the head, so aprev[s] is real)...
                    p = aprev[s]
                    n = anext[s]
                    anext[p] = n
                    if n >= 0:
                        aprev[n] = p
                    else:
                        tail = p
                    # ...and relink at the MRU head.
                    aprev[s] = -1
                    anext[s] = head
                    aprev[head] = s
                    head = s
            elif is_write:
                misses += 1
                while occ >= capacity:
                    v = tail  # pop_tail, inlined
                    assert v >= 0, "evict called on empty cache"
                    p = aprev[v]
                    if p >= 0:
                        anext[p] = -1
                    else:
                        head = -1
                    tail = p
                    aprev[v] = -1
                    aowner[v] = -2  # FREE
                    free_push(v)
                    length -= 1
                    victim_lpn = lpn_col[v]
                    del index[victim_lpn]
                    occ -= 1
                    flushes.append(FlushBatch([victim_lpn]))
                s = free_pop()  # never empty: occ < capacity == n_slots
                aowner[s] = lid
                lpn_col[s] = lpn
                index[lpn] = s
                aprev[s] = -1
                anext[s] = head
                if head >= 0:
                    aprev[head] = s
                else:
                    tail = s
                head = s
                length += 1
                occ += 1
                inserted += 1
            else:
                misses += 1
                read_misses.append(lpn)
        lst.head = head
        lst.tail = tail
        lst._len = length
        self._occupancy = occ
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        self._list.move_to_head(self._index[lpn])

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        s = self._arena.alloc()
        self._lpn[s] = lpn
        self._index[lpn] = s
        self._list.push_head(s)
        self._occupancy += 1

    def _evict_one(self, outcome: AccessOutcome) -> None:
        s = self._list.pop_tail()
        assert s >= 0, "evict called on empty cache"
        lpn = self._lpn[s]
        self._arena.free(s)
        del self._index[lpn]
        self._occupancy -= 1
        outcome.flushes.append(FlushBatch([lpn]))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        arena = self._arena
        lpn_col = self._lpn
        lpns = []
        slots = []
        for s in self._list:
            lpns.append(lpn_col[s])
            slots.append(s)
        self._list.clear()
        for s in slots:
            arena.free(s)
        self._index.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._arena.validate()
        assert len(self._list) == len(self._index) == self._occupancy
        for s in self._list:
            assert self._index.get(self._lpn[s]) == s


class BPLRUArenaCache(WriteBufferPolicy):
    """Block-padding LRU over an index arena: one slot per block.

    A block's cached pages are a bitmask over its ``pages_per_block``
    offsets — membership tests, page counts (``bit_count``) and the
    sorted eviction order (ascending-bit walk) all come straight off
    the mask, replacing the object policy's per-page index dict and
    per-block ``set``.
    """

    name = "bplru-arena"
    node_bytes = 24  # same replacement metadata as the object BPLRU

    def __init__(
        self,
        capacity_pages: int,
        pages_per_block: int = 64,
        page_padding: bool = False,
    ) -> None:
        super().__init__(capacity_pages)
        self.pages_per_block = pages_per_block
        self.page_padding = page_padding
        self._full_mask = (1 << pages_per_block) - 1
        # Blocks, not pages: start at a fraction of capacity and grow.
        arena = IndexArena(max(8, capacity_pages // 8))
        self._arena = arena
        self._list = arena.new_list("bplru")
        self._lbn: List[int] = arena.new_column(fill=-1)
        self._mask: List[int] = arena.new_column(fill=0)
        self._last_off: List[int] = arena.new_column(fill=-1)
        self._in_order: List[bool] = arena.new_column(fill=True)
        self._blocks: Dict[int, int] = {}  # lbn -> slot

    # ------------------------------------------------------------------
    def contains(self, lpn: int) -> bool:
        """Whether ``lpn`` is currently cached."""
        s = self._blocks.get(lpn // self.pages_per_block, -1)
        return s >= 0 and (self._mask[s] >> (lpn % self.pages_per_block)) & 1 != 0

    def cached_lpns(self) -> Iterable[int]:
        """All cached LPNs (order unspecified)."""
        ppb = self.pages_per_block
        mask_col = self._mask
        out = []
        for lbn, s in self._blocks.items():
            base = lbn * ppb
            m = mask_col[s]
            while m:
                low = m & -m
                out.append(base + low.bit_length() - 1)
                m ^= low
        return out

    def metadata_nodes(self) -> int:
        """Live replacement-metadata node count."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Fused fast path over the flat block arrays.  One ``divmod``
        and one dict probe per page; inserts and hits are pure array
        writes.  Mirrors the object BPLRU loop exactly (the traced path
        runs the hooks); pinned by the lockstep equivalence suite.
        """
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        blocks = self._blocks
        blocks_get = blocks.get
        arena = self._arena
        aprev = arena.prev
        anext = arena.next
        alloc = arena.alloc
        lbn_col = self._lbn
        mask_col = self._mask
        last_off = self._last_off
        in_order = self._in_order
        lst = self._list
        lid = lst.lid
        move_to_tail = lst.move_to_tail
        evict_one = self._evict_one
        ppb = self.pages_per_block
        full_mask = self._full_mask
        capacity = self.capacity_pages
        is_write = request.op is OpType.WRITE
        read_misses = outcome.read_miss_lpns
        occ = self._occupancy
        hits = misses = inserted = 0
        for lpn in request.pages():
            lbn, offset = divmod(lpn, ppb)
            s = blocks_get(lbn, -1)
            if s >= 0 and (mask_col[s] >> offset) & 1:
                hits += 1
                # A rewrite breaks the "written once, sequentially"
                # pattern, so the block rejoins the MRU end.
                in_order[s] = False
                if s != lst.head:
                    p = aprev[s]
                    n = anext[s]
                    anext[p] = n
                    if n >= 0:
                        aprev[n] = p
                    else:
                        lst.tail = p
                    h = lst.head
                    aprev[s] = -1
                    anext[s] = h
                    aprev[h] = s
                    lst.head = s
            elif is_write:
                misses += 1
                while occ >= capacity:
                    self._occupancy = occ
                    evict_one(outcome)
                    occ = self._occupancy
                # Re-probe: the eviction loop may have flushed this lbn.
                s = blocks_get(lbn, -1)
                if s < 0:
                    s = alloc()
                    arena.owner[s] = lid
                    lbn_col[s] = lbn
                    mask_col[s] = 0
                    last_off[s] = -1
                    in_order[s] = True
                    blocks[lbn] = s
                    h = lst.head
                    aprev[s] = -1
                    anext[s] = h
                    if h >= 0:
                        aprev[h] = s
                    else:
                        lst.tail = s
                    lst.head = s
                    lst._len += 1
                else:
                    if offset != last_off[s] + 1:
                        in_order[s] = False
                    if s != lst.head:
                        p = aprev[s]
                        n = anext[s]
                        anext[p] = n
                        if n >= 0:
                            aprev[n] = p
                        else:
                            lst.tail = p
                        h = lst.head
                        aprev[s] = -1
                        anext[s] = h
                        aprev[h] = s
                        lst.head = s
                mask_col[s] |= 1 << offset
                last_off[s] = offset
                occ += 1
                inserted += 1
                # LRU compensation: a fully sequential block that just
                # reached the block boundary joins the eviction end.
                if in_order[s] and offset == ppb - 1 and mask_col[s] == full_mask:
                    move_to_tail(s)
            else:
                misses += 1
                read_misses.append(lpn)
        self._occupancy = occ
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    def _on_hit(self, lpn: int, request: IORequest) -> None:
        s = self._blocks[lpn // self.pages_per_block]
        # A rewrite breaks the "written once, sequentially" pattern, so
        # the block rejoins the MRU end like any hot block.
        self._in_order[s] = False
        self._list.move_to_head(s)

    def _insert(self, lpn: int, request: IORequest, outcome: AccessOutcome) -> None:
        lbn, offset = divmod(lpn, self.pages_per_block)
        s = self._blocks.get(lbn, -1)
        if s < 0:
            s = self._arena.alloc()
            self._lbn[s] = lbn
            self._mask[s] = 0
            self._last_off[s] = -1
            self._in_order[s] = True
            self._blocks[lbn] = s
            self._list.push_head(s)
        else:
            if offset != self._last_off[s] + 1:
                self._in_order[s] = False
            self._list.move_to_head(s)
        self._mask[s] |= 1 << offset
        self._last_off[s] = offset
        self._occupancy += 1
        # LRU compensation: a fully sequential block that just reached
        # the block boundary is demoted to the eviction end.
        if (
            self._in_order[s]
            and offset == self.pages_per_block - 1
            and self._mask[s] == self._full_mask
        ):
            self._list.move_to_tail(s)

    def _evict_one(self, outcome: AccessOutcome) -> None:
        s = self._list.pop_tail()
        assert s >= 0, "evict called on empty cache"
        ppb = self.pages_per_block
        lbn = self._lbn[s]
        base = lbn * ppb
        mask = self._mask[s]
        lpns = []
        m = mask
        while m:  # ascending-bit walk == sorted page order
            low = m & -m
            lpns.append(base + low.bit_length() - 1)
            m ^= low
        del self._blocks[lbn]
        self._arena.free(s)
        self._occupancy -= len(lpns)
        if self.page_padding and len(lpns) < ppb:
            padding = [base + off for off in range(ppb) if not (mask >> off) & 1]
            # Padding pages are read from flash and written back as part
            # of the same single-block flush.
            outcome.read_miss_lpns.extend(padding)
            lpns = sorted(lpns + padding)
        outcome.flushes.append(FlushBatch(lpns, reason="capacity", pin_key=lbn))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self.cached_lpns())
        arena = self._arena
        slots = list(self._list)
        self._list.clear()
        for s in slots:
            arena.free(s)
        self._blocks.clear()
        self._occupancy = 0
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        super().validate()
        self._arena.validate()
        total = 0
        for s in self._list:
            lbn = self._lbn[s]
            assert self._blocks[lbn] == s
            m = self._mask[s]
            assert m, f"empty block {lbn} retained in list"
            assert m <= self._full_mask, "mask has bits beyond the block"
            total += m.bit_count()
        assert total == self._occupancy
        assert len(self._blocks) == len(self._list)


class VBBMSArenaCache(VBBMSCache):
    """Two-region VBBMS over one shared index arena.

    Inherits the stream detector, classification, traced mirror loop
    and the region structs from :class:`VBBMSCache`; only the storage
    changes — each region's DLL of virtual-block nodes becomes an
    :class:`IndexList` over a shared arena, and a virtual block's pages
    become a small bitmask column.  ``region.vbs`` maps vbn -> slot id
    and ``_page_region`` keeps the same lpn -> region dict, so the
    inherited probe paths work unchanged.
    """

    name = "vbbms-arena"
    node_bytes = 24  # same replacement metadata as the object VBBMS

    def __init__(
        self,
        capacity_pages: int,
        random_fraction: float = 0.6,
        random_vb_pages: int = 3,
        seq_vb_pages: int = 4,
        seq_threshold_pages: int = 16,
        stream_table_size: int = 32,
    ) -> None:
        super().__init__(
            capacity_pages,
            random_fraction=random_fraction,
            random_vb_pages=random_vb_pages,
            seq_vb_pages=seq_vb_pages,
            seq_threshold_pages=seq_threshold_pages,
            stream_table_size=stream_table_size,
        )
        # Replace the regions' object DLLs with arena list views; the
        # rest of the _Region struct (capacity, vbs dict, occupancy,
        # evict_reason) is reused as-is with slots instead of nodes.
        arena = IndexArena(max(8, capacity_pages // 2))
        self._arena = arena
        self._vbn: List[int] = arena.new_column(fill=-1)
        self._mask: List[int] = arena.new_column(fill=0)
        for region in (self.random, self.seq):
            region.list = arena.new_list(region.name)

    # ------------------------------------------------------------------
    def access(self, request: IORequest) -> AccessOutcome:
        """Fused fast path over the shared arena (see VBBMSCache.access
        for the structure; the traced mirror is inherited and runs the
        ``_insert_into``/``_evict_from`` overrides below)."""
        if self.tracer.enabled:
            return self._access_traced(request)
        self._req_seq += 1
        outcome = AccessOutcome()
        is_write = request.op is OpType.WRITE
        page_region = self._page_region
        region_get = page_region.get
        evict_from = self._evict_from
        arena = self._arena
        aprev = arena.prev
        anext = arena.next
        alloc = arena.alloc
        vbn_col = self._vbn
        mask_col = self._mask
        read_misses = outcome.read_miss_lpns
        hits = misses = inserted = 0
        if is_write:
            # The insert target is fixed for the whole request, so its
            # region fields are bound once (the traced path still runs
            # the ``_insert_into`` method).
            target = self.classify(request)
            t_cap = target.capacity
            t_vb_pages = target.vb_pages
            t_use_lru = target.use_lru
            t_vbs = target.vbs
            t_vbs_get = t_vbs.get
            t_list = target.list
            t_lid = t_list.lid
        for lpn in request.pages():
            region = region_get(lpn)
            if region is not None:
                hits += 1
                # Only the random region tracks recency (LRU); the FIFO
                # sequential region leaves hit blocks in place.
                if region.use_lru:
                    s = region.vbs[lpn // region.vb_pages]
                    rl = region.list
                    if s != rl.head:
                        p = aprev[s]
                        n = anext[s]
                        anext[p] = n
                        if n >= 0:
                            aprev[n] = p
                        else:
                            rl.tail = p
                        h = rl.head
                        aprev[s] = -1
                        anext[s] = h
                        aprev[h] = s
                        rl.head = s
            elif is_write:
                misses += 1
                while target.occupancy >= t_cap:
                    evict_from(target, outcome)
                vbn = lpn // t_vb_pages
                s = t_vbs_get(vbn, -1)
                if s < 0:
                    s = alloc()
                    arena.owner[s] = t_lid
                    vbn_col[s] = vbn
                    mask_col[s] = 0
                    t_vbs[vbn] = s
                    h = t_list.head
                    aprev[s] = -1
                    anext[s] = h
                    if h >= 0:
                        aprev[h] = s
                    else:
                        t_list.tail = s
                    t_list.head = s
                    t_list._len += 1
                elif t_use_lru and s != t_list.head:
                    p = aprev[s]
                    n = anext[s]
                    anext[p] = n
                    if n >= 0:
                        aprev[n] = p
                    else:
                        t_list.tail = p
                    h = t_list.head
                    aprev[s] = -1
                    anext[s] = h
                    aprev[h] = s
                    t_list.head = s
                mask_col[s] |= 1 << (lpn - vbn * t_vb_pages)
                target.occupancy += 1
                page_region[lpn] = target
                inserted += 1
            else:
                misses += 1
                read_misses.append(lpn)
        outcome.page_hits = hits
        outcome.page_misses = misses
        outcome.inserted_pages = inserted
        return outcome

    # ------------------------------------------------------------------
    def _insert_into(self, region: _Region, lpn: int) -> None:
        vbn = lpn // region.vb_pages
        s = region.vbs.get(vbn, -1)
        if s < 0:
            s = self._arena.alloc()
            self._vbn[s] = vbn
            self._mask[s] = 0
            region.vbs[vbn] = s
            region.list.push_head(s)
        elif region.use_lru:
            region.list.move_to_head(s)
        self._mask[s] |= 1 << (lpn - vbn * region.vb_pages)
        region.occupancy += 1
        self._page_region[lpn] = region

    def _evict_from(self, region: _Region, outcome: AccessOutcome) -> None:
        s = region.list.pop_tail()
        assert s >= 0, f"evict from empty region {region.name}"
        vbn = self._vbn[s]
        base = vbn * region.vb_pages
        m = self._mask[s]
        page_region = self._page_region
        lpns = []
        while m:  # ascending-bit walk == sorted page order
            low = m & -m
            lpn = base + low.bit_length() - 1
            lpns.append(lpn)
            del page_region[lpn]
            m ^= low
        del region.vbs[vbn]
        self._arena.free(s)
        region.occupancy -= len(lpns)
        outcome.flushes.append(FlushBatch(lpns, reason=region.evict_reason))

    # ------------------------------------------------------------------
    def flush_all(self) -> FlushBatch:
        """Drain the cache; returns one batch of the dirty pages."""
        lpns = sorted(self._page_region.keys())
        arena = self._arena
        for region in (self.random, self.seq):
            slots = list(region.list)
            region.list.clear()
            for s in slots:
                arena.free(s)
            region.vbs.clear()
            region.occupancy = 0
        self._page_region.clear()
        return FlushBatch(lpns, reason="drain")

    def validate(self) -> None:
        """Check structural invariants (tests); see CachePolicy."""
        # Regions have individual capacities; the global bound still holds.
        assert self.occupancy() <= self.capacity_pages
        self._arena.validate()
        for region in (self.random, self.seq):
            total = 0
            for s in region.list:
                vbn = self._vbn[s]
                assert region.vbs[vbn] == s
                m = self._mask[s]
                assert m, "empty virtual block retained"
                assert m < (1 << region.vb_pages), "mask beyond virtual block"
                base = vbn * region.vb_pages
                mm = m
                while mm:
                    low = mm & -mm
                    lpn = base + low.bit_length() - 1
                    assert self._page_region[lpn] is region
                    mm ^= low
                total += m.bit_count()
            assert total == region.occupancy
            assert region.occupancy <= region.capacity
