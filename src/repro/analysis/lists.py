"""List-occupancy analysis for Req-block (Figure 13).

Figure 13 plots the number of pages held in IRL, SRL and DRL over the
course of each replay, sampled every 10,000 requests.  The replay driver
collects these samples into ``ReplayMetrics.list_log``; this module
summarises them (means, shares, the "SRL holds the most pages" check)
for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

__all__ = ["ListOccupancySummary", "summarize_list_log"]

_LEVELS = ("IRL", "SRL", "DRL")


@dataclass(frozen=True, slots=True)
class ListOccupancySummary:
    """Aggregate view of one replay's IRL/SRL/DRL page counts."""

    samples: int
    mean_pages: Dict[str, float]
    max_pages: Dict[str, int]
    #: Long-run share of cached pages per list (means normalised).
    share: Dict[str, float]

    @property
    def dominant_list(self) -> str:
        """The list holding the most pages on average."""
        return max(self.mean_pages, key=lambda k: self.mean_pages[k])

    @property
    def drl_is_smallest(self) -> bool:
        """Paper §4.3: DRL holds a small part of cached request blocks."""
        return self.dominant_list != "DRL" and self.share["DRL"] <= min(
            self.share["IRL"], self.share["SRL"]
        ) + 1e-9


def summarize_list_log(
    list_log: Sequence[Tuple[int, Dict[str, int]]]
) -> ListOccupancySummary:
    """Summarise the (request index, per-list page count) samples."""
    if not list_log:
        return ListOccupancySummary(
            samples=0,
            mean_pages={k: 0.0 for k in _LEVELS},
            max_pages={k: 0 for k in _LEVELS},
            share={k: 0.0 for k in _LEVELS},
        )
    totals = {k: 0.0 for k in _LEVELS}
    maxima = {k: 0 for k in _LEVELS}
    for _idx, counts in list_log:
        for k in _LEVELS:
            v = counts.get(k, 0)
            totals[k] += v
            if v > maxima[k]:
                maxima[k] = v
    n = len(list_log)
    means = {k: totals[k] / n for k in _LEVELS}
    grand = sum(means.values())
    share = {k: (means[k] / grand if grand else 0.0) for k in _LEVELS}
    return ListOccupancySummary(
        samples=n, mean_pages=means, max_pages=maxima, share=share
    )
