"""Analyses: motivation statistics (Figs. 2/3), list occupancy (Fig. 13),
and Mattson reuse-distance / miss-ratio curves."""

from repro.analysis.lists import ListOccupancySummary, summarize_list_log
from repro.analysis.motivation import MotivationStats, analyze_motivation
from repro.analysis.reuse import ReuseProfile, reuse_profile, split_reuse_by_size

__all__ = [
    "ListOccupancySummary",
    "summarize_list_log",
    "MotivationStats",
    "analyze_motivation",
    "ReuseProfile",
    "reuse_profile",
    "split_reuse_by_size",
]
