"""Reuse-distance analysis and LRU miss-ratio curves.

The calibration story of this reproduction rests on *where* each
workload's temporal locality lives: Req-block wins when small-request
reuse distances sit inside the cache while large-request data's sit far
outside.  This module computes, in one pass:

* the **stack (reuse) distance** of every page access — the number of
  distinct pages touched since the previous access to the same page
  (Mattson et al. 1970); infinite for first touches;
* the **LRU miss-ratio curve (MRC)** — by Mattson's inclusion property,
  an LRU cache of capacity ``c`` hits exactly the accesses with stack
  distance ``< c``, so one pass yields the hit ratio at *every* cache
  size simultaneously.

Distances are computed with the classic Fenwick-tree formulation:
O(log n) per access, O(n) memory in the number of distinct pages.  A
property test checks the MRC against direct LRU simulation at several
capacities — the two independent implementations must agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.traces.model import IORequest, Trace
from repro.utils.stats import Histogram

__all__ = ["ReuseProfile", "reuse_profile", "split_reuse_by_size"]


class _Fenwick:
    """Binary indexed tree over access timestamps (1-based)."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        """Point update: tree[i] += delta."""
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of entries 1..i."""
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


@dataclass
class ReuseProfile:
    """Stack-distance histogram plus derived curves for one trace."""

    #: Histogram of finite stack distances (distinct pages between
    #: consecutive touches of the same page).
    distances: Histogram
    #: Accesses that were first touches (infinite distance).
    cold_accesses: int
    total_accesses: int

    @property
    def finite_accesses(self) -> int:
        """Accesses with a finite stack distance (re-uses)."""
        return self.total_accesses - self.cold_accesses

    def hit_ratio_at(self, cache_pages: int) -> float:
        """LRU hit ratio for a ``cache_pages``-sized cache (Mattson)."""
        if self.total_accesses == 0 or cache_pages <= 0:
            return 0.0
        hits = sum(w for d, w in self.distances.items() if d < cache_pages)
        return hits / self.total_accesses

    def miss_ratio_curve(
        self, cache_sizes: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """(cache pages, miss ratio) points; sizes must be ascending."""
        out = []
        cdf = self.distances.cdf()
        total = self.total_accesses
        if total == 0:
            return [(c, 1.0) for c in cache_sizes]
        finite = self.distances.total
        i = 0
        covered = 0.0
        for c in cache_sizes:
            while i < len(cdf) and cdf[i][0] < c:
                covered = cdf[i][1]
                i += 1
            hits = covered * finite
            out.append((c, 1.0 - hits / total))
        return out

    def median_distance(self) -> Optional[int]:
        """Median finite stack distance (None if no reuses)."""
        if self.distances.total == 0:
            return None
        return self.distances.percentile(0.5)


def _page_stream(
    trace_or_requests: Trace | Iterable[IORequest],
    writes_only: bool,
) -> Iterable[int]:
    for r in trace_or_requests:
        if writes_only and not r.is_write:
            continue
        yield from r.pages()


def reuse_profile(
    trace: Trace | Iterable[IORequest],
    writes_only: bool = False,
) -> ReuseProfile:
    """Compute the stack-distance profile of a trace's page stream.

    ``writes_only=True`` restricts to write accesses — the stream the
    write buffer actually sees for insertion decisions.
    """
    accesses = list(_page_stream(trace, writes_only))
    n = len(accesses)
    hist = Histogram()
    cold = 0
    if n == 0:
        return ReuseProfile(hist, 0, 0)
    fen = _Fenwick(n)
    last_seen: Dict[int, int] = {}
    for t, page in enumerate(accesses, start=1):
        prev = last_seen.get(page)
        if prev is None:
            cold += 1
        else:
            # Distinct pages touched in (prev, t): pages whose latest
            # touch lies in that window.
            distance = fen.prefix_sum(t - 1) - fen.prefix_sum(prev)
            hist.add(distance)
            fen.add(prev, -1)
        fen.add(t, 1)
        last_seen[page] = t
    return ReuseProfile(hist, cold, n)


def split_reuse_by_size(
    trace: Trace, boundary_pages: float
) -> Tuple[ReuseProfile, ReuseProfile]:
    """Reuse profiles of pages written by small vs large requests.

    Classifies each *access* by the size of the most recent write that
    touched its page (first-write wins until rewritten); accesses to
    never-written pages are ignored.  This quantifies the paper's
    premise directly: the small-write profile should show short
    distances, the large-write profile long/no reuse.
    """
    small_stream: List[IORequest] = []
    large_stream: List[IORequest] = []
    owner: Dict[int, bool] = {}  # page -> written by small request?
    small_acc: List[int] = []
    large_acc: List[int] = []
    for r in trace:
        if r.is_write:
            is_small = r.npages <= boundary_pages
            for p in r.pages():
                owner[p] = is_small
                (small_acc if is_small else large_acc).append(p)
        else:
            for p in r.pages():
                cls = owner.get(p)
                if cls is None:
                    continue
                (small_acc if cls else large_acc).append(p)

    def profile(pages: List[int]) -> ReuseProfile:
        """Stack-distance profile of one page-access list."""
        hist = Histogram()
        cold = 0
        n = len(pages)
        if n == 0:
            return ReuseProfile(hist, 0, 0)
        fen = _Fenwick(n)
        last: Dict[int, int] = {}
        for t, page in enumerate(pages, start=1):
            prev = last.get(page)
            if prev is None:
                cold += 1
            else:
                hist.add(fen.prefix_sum(t - 1) - fen.prefix_sum(prev))
                fen.add(prev, -1)
            fen.add(t, 1)
            last[page] = t
        return ReuseProfile(hist, cold, n)

    return profile(small_acc), profile(large_acc)
