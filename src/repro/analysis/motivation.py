"""Motivation analysis — the statistics behind Figures 2 and 3.

The paper motivates Req-block by instrumenting an LRU-managed 16 MB
cache and showing

* **Fig. 2** — the CDFs over request size of (a) pages *inserted* into
  the cache and (b) page *hits*, demonstrating that small requests
  contribute ~80% of hits while occupying little space (Observation 1);
* **Fig. 3** — the fraction of cached pages belonging to *large*
  requests that are ever re-accessed: only 22.0%-37.2% (Observation 2).

This module replays a trace through an instrumented LRU cache that
remembers, for every cached page, the size of the write request that
inserted it, and accumulates exactly those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cache.lru import LRUCache
from repro.traces.model import Trace
from repro.traces.stats import mean_request_pages
from repro.utils.stats import CDFBuilder

__all__ = ["MotivationStats", "analyze_motivation"]


@dataclass
class MotivationStats:
    """Fig. 2/3 statistics for one trace."""

    trace_name: str
    cache_pages: int
    #: Small/large boundary in pages (mean write-request size, footnote 1).
    boundary_pages: float
    #: CDF of pages inserted, keyed by inserting request size (Fig. 2).
    insert_cdf: CDFBuilder = field(default_factory=CDFBuilder)
    #: CDF of page hits, keyed by the *inserting* request's size (Fig. 2).
    hit_cdf: CDFBuilder = field(default_factory=CDFBuilder)
    #: Distinct large-request pages that entered the cache (Fig. 3 denom).
    large_pages_cached: int = 0
    #: Of those, pages hit at least once before eviction (Fig. 3 numer).
    large_pages_hit: int = 0
    #: Same pair for small requests (not plotted, but informative).
    small_pages_cached: int = 0
    small_pages_hit: int = 0

    # ------------------------------------------------------------------
    @property
    def large_hit_fraction(self) -> float:
        """Fig. 3's bar: fraction of large-request pages re-accessed."""
        if self.large_pages_cached == 0:
            return 0.0
        return self.large_pages_hit / self.large_pages_cached

    @property
    def small_hit_fraction(self) -> float:
        """Fraction of small-request cached pages ever re-accessed."""
        if self.small_pages_cached == 0:
            return 0.0
        return self.small_pages_hit / self.small_pages_cached

    def hits_from_small_fraction(self) -> float:
        """Share of all hits landing on small-request pages (Obs. 1)."""
        sizes = [s for s in self.hit_cdf.support() if s <= self.boundary_pages]
        if not sizes or self.hit_cdf.total_weight == 0:
            return 0.0
        return self.hit_cdf.evaluate([max(sizes)])[0]

    def inserts_from_small_fraction(self) -> float:
        """Share of all inserted pages coming from small requests."""
        sizes = [s for s in self.insert_cdf.support() if s <= self.boundary_pages]
        if not sizes or self.insert_cdf.total_weight == 0:
            return 0.0
        return self.insert_cdf.evaluate([max(sizes)])[0]

    def cdf_rows(
        self, sizes: Sequence[int]
    ) -> List[Tuple[int, float, float]]:
        """(request size, insert CDF, hit CDF) rows for printing Fig. 2."""
        ins = self.insert_cdf.evaluate(sizes)
        hit = self.hit_cdf.evaluate(sizes)
        return [(s, i, h) for s, i, h in zip(sizes, ins, hit)]


class _InstrumentedLRU(LRUCache):
    """LRU that remembers the inserting request's size per cached page."""

    def __init__(self, capacity_pages: int) -> None:
        super().__init__(capacity_pages)
        self.insert_size: Dict[int, int] = {}  # lpn -> inserting req pages
        self.was_hit: Dict[int, bool] = {}  # lpn -> hit since insertion

    def _insert(self, lpn, request, outcome):  # type: ignore[override]
        super()._insert(lpn, request, outcome)
        self.insert_size[lpn] = request.npages
        self.was_hit[lpn] = False


def analyze_motivation(
    trace: Trace, cache_pages: int = 4096
) -> MotivationStats:
    """Replay ``trace`` through instrumented LRU; returns Fig. 2/3 stats.

    The default 4096-page cache is the paper's 16 MB configuration; pass
    a scaled value when the trace is scaled.
    """
    boundary = mean_request_pages(trace, writes_only=True)
    stats = MotivationStats(
        trace_name=trace.name, cache_pages=cache_pages, boundary_pages=boundary
    )
    cache = _InstrumentedLRU(cache_pages)

    for request in trace:
        for lpn in request.pages():
            cached_before = cache.contains(lpn)
            if cached_before:
                size = cache.insert_size[lpn]
                stats.hit_cdf.add(size)
                if not cache.was_hit[lpn]:
                    cache.was_hit[lpn] = True
                    if size > boundary:
                        stats.large_pages_hit += 1
                    else:
                        stats.small_pages_hit += 1
                cache._on_hit(lpn, request)
            elif request.is_write:
                from repro.cache.base import AccessOutcome

                outcome = AccessOutcome()
                while cache.occupancy() >= cache.capacity_pages:
                    victim_lpn = cache._list.tail.lpn  # type: ignore[union-attr]
                    cache._evict_one(outcome)
                    cache.insert_size.pop(victim_lpn, None)
                    cache.was_hit.pop(victim_lpn, None)
                cache._insert(lpn, request, outcome)
                stats.insert_cdf.add(request.npages)
                if request.npages > boundary:
                    stats.large_pages_cached += 1
                else:
                    stats.small_pages_cached += 1
    return stats
