# Convenience targets for the Req-block reproduction.

PYTHON ?= python

.PHONY: install test coverage bench bench-full bench-check examples figures lint lint-ci typecheck clean

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q

# Line-coverage gate (needs pytest-cov: pip install -e .[dev]).
coverage:
	$(PYTHON) -m pytest tests/ -q --cov=repro --cov-report=term-missing --cov-fail-under=75

# Static checks (needs ruff/mypy: pip install -e .[dev]).  Scope is
# src/repro — benchmarks and tests are exercised by the test jobs.
lint:
	ruff check src/repro
	ruff format --check src/repro

typecheck:
	mypy src/repro

# Workflow hygiene: the structural linter always runs (PyYAML only);
# actionlint runs too when it is on PATH (CI installs it, so a local
# pass of this target mirrors the CI lint job).
lint-ci:
	$(PYTHON) tools/lint_workflows.py
	@if command -v actionlint >/dev/null 2>&1; then \
		actionlint -color; \
	else \
		echo "actionlint not installed; structural lint only"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate the throughput baseline and gate it against the committed
# one (the same comparison the CI perf job runs; see CONTRIBUTING.md).
# The committed baseline is stashed first because a same-day run would
# otherwise overwrite it and compare the fresh result against itself.
# Both data-plane engines run (docs/arena.md); check_bench matches each
# fresh file to the committed baseline with the same engine key.
bench-check:
	rm -rf .bench_baseline && mkdir .bench_baseline
	cp benchmarks/results/BENCH_*.json .bench_baseline/
	$(PYTHON) -m pytest benchmarks/test_baseline.py --benchmark-only -q
	$(PYTHON) tools/check_bench.py --baseline .bench_baseline \
		--fresh $$(ls -t benchmarks/results/BENCH_*.json | grep -v _arena | head -1)
	REPRO_ENGINE=arena $(PYTHON) -m pytest benchmarks/test_baseline.py --benchmark-only -q
	$(PYTHON) tools/check_bench.py --baseline .bench_baseline \
		--fresh $$(ls -t benchmarks/results/BENCH_*_arena.json | head -1)
	rm -rf .bench_baseline

# Full paper-scale regeneration (hours of compute).
bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

figures:
	for fig in table1 table2 fig2 fig3 fig7 fig8 fig9 fig10 fig11 fig12 fig13; do \
		$(PYTHON) -m repro.cli experiment $$fig; done

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
