# Convenience targets for the Req-block reproduction.

PYTHON ?= python

.PHONY: install test coverage bench bench-full examples figures clean

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q

# Line-coverage gate (needs pytest-cov: pip install -e .[dev]).
coverage:
	$(PYTHON) -m pytest tests/ -q --cov=repro --cov-report=term-missing --cov-fail-under=75

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Full paper-scale regeneration (hours of compute).
bench-full:
	REPRO_BENCH_SCALE=1.0 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

figures:
	for fig in table1 table2 fig2 fig3 fig7 fig8 fig9 fig10 fig11 fig12 fig13; do \
		$(PYTHON) -m repro.cli experiment $$fig; done

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
