#!/usr/bin/env python3
"""Quickstart: replay a paper workload through Req-block and LRU.

Generates the ``src1_2`` workload (scaled to 1/64 of the paper's length
so this runs in seconds), replays it through the full SSD model under
both policies, and prints the headline metrics the paper compares:
page hit ratio, mean I/O response time, pages per eviction and flash
write count.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ReplayConfig, get_workload, replay_trace, scaled_cache_bytes
from repro.sim.report import format_table

SCALE = 1 / 64  # fraction of the paper's trace length (and cache size)
CACHE_MB = 16  # paper-equivalent DRAM data-cache size


def main() -> None:
    trace = get_workload("src1_2", scale=SCALE)
    cache_bytes = scaled_cache_bytes(CACHE_MB, SCALE)
    print(
        f"Replaying {trace.name}: {len(trace)} requests, "
        f"{cache_bytes // 4096}-page cache ({CACHE_MB}MB paper-equivalent)\n"
    )

    rows = []
    for policy in ("lru", "reqblock"):
        metrics = replay_trace(
            trace, ReplayConfig(policy=policy, cache_bytes=cache_bytes)
        )
        rows.append(
            (
                policy,
                f"{metrics.hit_ratio:.3f}",
                f"{metrics.mean_response_ms:.3f}",
                f"{metrics.mean_eviction_pages:.2f}",
                metrics.flash_total_writes,
            )
        )
    print(
        format_table(
            ("Policy", "HitRatio", "MeanResp(ms)", "PagesPerEvict", "FlashWrites"),
            rows,
        )
    )

    lru_resp = float(rows[0][2])
    rb_resp = float(rows[1][2])
    print(
        f"\nReq-block reduces mean response time by "
        f"{(1 - rb_resp / lru_resp):.1%} vs LRU on this trace "
        f"(paper average: 23.8%)."
    )


if __name__ == "__main__":
    main()
