#!/usr/bin/env python3
"""Peek inside the SSD model: parallelism, GC and wear.

Uses the simulator substrate directly (no cache-policy comparison) to
show what the Table-1 device does under the hood:

* how a striped 16-page flush spreads over 8 channels while a pinned
  (BPLRU-style) flush serialises on one;
* garbage collection kicking in on a small, hot device, with its
  write-amplification cost;
* the wear report (P/E cycles, evenness, lifetime budget).

Run:  python examples/ssd_internals.py
"""

from __future__ import annotations

from repro import SSDConfig, SSDController
from repro.cache.lru import LRUCache
from repro.ssd.wear import wear_report
from repro.traces.model import IORequest, OpType


def flush_timing_demo() -> None:
    cfg = SSDConfig(blocks_per_plane=64)
    controller = SSDController(cfg, LRUCache(16))

    # Striped: 16 programs rotate channel-first.
    striped = [
        controller.ftl.write_page(lpn, 0.0) for lpn in range(16)
    ]
    striped_end = max(op.end for op in striped)

    # Pinned: 16 programs confined to channel 0's four planes.
    planes = controller.ftl.planes_of_channel(0)
    base_t = striped_end + 1
    pinned = [
        controller.ftl.write_page(100 + i, base_t, plane=planes[i % 4])
        for i in range(16)
    ]
    pinned_end = max(op.end for op in pinned) - base_t

    print("Flush of 16 pages (program = 2 ms, bus = 41 us/page):")
    print(f"  striped over 8 channels : {striped_end:7.2f} ms")
    print(f"  pinned to one channel   : {pinned_end:7.2f} ms")
    print(
        "  -> the single-channel flush is what the paper blames for "
        "BPLRU's response times (§4.2.2)\n"
    )


def gc_and_wear_demo() -> None:
    # A deliberately tiny device: 8 planes x 48 blocks x 64 pages.
    cfg = SSDConfig(
        n_channels=4,
        chips_per_channel=1,
        planes_per_chip=2,
        blocks_per_plane=48,
        pages_per_block=64,
    )
    controller = SSDController(cfg, LRUCache(64))
    footprint = int(cfg.total_pages * 0.65)
    hot_half = footprint // 2

    # Interleave a never-rewritten cold half with a churned hot half, so
    # GC victims carry live cold pages that must be migrated.  The
    # interleaving is randomised: a strictly alternating pattern would
    # resonate with the FTL's round-robin striping and concentrate the
    # immortal cold data in a subset of planes.
    import random

    rng = random.Random(7)
    cold_lpns = list(range(hot_half, footprint, 2))
    rng.shuffle(cold_lpns)
    t = 0.0
    for round_ in range(6):
        for lpn in range(0, hot_half, 2):
            controller.submit(IORequest(t, OpType.WRITE, lpn, 2))
            t += 0.05
            if round_ == 0 and cold_lpns and rng.random() < 0.95:
                controller.submit(IORequest(t, OpType.WRITE, cold_lpns.pop(), 2))
                t += 0.05

    gc = controller.gc.stats
    report = wear_report(
        cfg,
        controller.flash,
        host_programs=controller.ftl.stats.host_programs,
        gc_programs=gc.pages_migrated,
    )
    print(
        f"After overwriting a {footprint}-page working set 3x on a "
        f"{cfg.total_pages}-page device:"
    )
    print(f"  GC invocations      : {gc.invocations}")
    print(f"  blocks erased       : {gc.blocks_erased}")
    print(f"  pages migrated      : {gc.pages_migrated}")
    print(f"  write amplification : {report.write_amplification:.3f}")
    print(
        f"  wear: mean {report.mean_erases:.1f} / max {report.max_erases} "
        f"erases per block, CoV {report.cov:.2f}, "
        f"{report.budget_used:.2%} of the P/E budget used"
    )


if __name__ == "__main__":
    flush_timing_demo()
    gc_and_wear_demo()
