#!/usr/bin/env python3
"""Build a custom synthetic workload and watch Req-block's lists work.

Shows the two extension points a downstream user touches first:

1. ``SyntheticConfig`` — define your own workload instead of the six
   paper traces (here: a database-like mix of hot 8 KB index updates
   against cold 256 KB table scans' writeback);
2. driving a policy object directly — we replay against a raw
   ``ReqBlockCache`` and sample its IRL/SRL/DRL occupancy as it runs,
   the machinery behind the paper's Figure 13.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro import ReqBlockCache, SyntheticConfig, generate_trace
from repro.sim.report import format_table

# A write-heavy OLTP-ish mix: 70% of writes are 1-2 page index updates
# hammering 96 hot slots; the rest are ~32-page sequential writebacks.
CONFIG = SyntheticConfig(
    name="oltp_mix",
    n_requests=40_000,
    seed=2024,
    write_ratio=0.8,
    small_write_fraction=0.7,
    small_size_mean=1.7,
    small_size_max=2,
    large_size_mean=32.0,
    large_size_max=96,
    n_hot_slots=96,
    zipf_theta=1.05,
    large_span_pages=60_000,
    large_rewrite_prob=0.10,
    read_recent_prob=0.65,
)


def main() -> None:
    trace = generate_trace(CONFIG)
    print(
        f"{trace.name}: {len(trace)} requests, "
        f"{trace.footprint_pages()} distinct pages\n"
    )

    cache = ReqBlockCache(capacity_pages=512, delta=5)
    hits = total = 0
    samples = []
    for i, request in enumerate(trace):
        outcome = cache.access(request)
        hits += outcome.page_hits
        total += outcome.total_pages
        if i % 5000 == 0 and i > 0:
            counts = cache.list_page_counts()
            samples.append(
                (i, counts["IRL"], counts["SRL"], counts["DRL"], f"{hits / total:.3f}")
            )

    print(format_table(("Request#", "IRL", "SRL", "DRL", "HitSoFar"), samples))
    counts = cache.list_page_counts()
    print(
        f"\nFinal: {cache.occupancy()} cached pages in "
        f"{cache.metadata_nodes()} request blocks "
        f"({cache.metadata_bytes()} B metadata). "
        f"SRL holds {counts['SRL'] / max(1, cache.occupancy()):.0%} of pages — "
        "the hot index updates Req-block is designed to pin."
    )


if __name__ == "__main__":
    main()
