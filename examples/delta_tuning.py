#!/usr/bin/env python3
"""Tune Req-block's δ for a workload (the paper's Fig. 7 study).

δ is the SRL size limit: request blocks of at most δ pages are treated
as "small" and promoted whole on a hit.  The paper sweeps δ ∈ [1, 7]
with a 32 MB cache and settles on δ = 5.  This example runs the same
sweep on a chosen workload, prints hit ratio and response time
normalised to δ = 1, and reports the recommended setting.

Run:  python examples/delta_tuning.py [--workload src1_2]
"""

from __future__ import annotations

import argparse

from repro.core.tuning import recommend_delta, sweep_delta
from repro.sim.report import format_table
from repro.traces.workloads import WORKLOAD_ORDER, scaled_cache_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="src1_2", choices=WORKLOAD_ORDER)
    parser.add_argument("--scale", type=float, default=1 / 64)
    parser.add_argument("--cache-mb", type=int, default=32)
    args = parser.parse_args()

    cache_bytes = scaled_cache_bytes(args.cache_mb, args.scale)
    points = sweep_delta(
        args.workload,
        cache_bytes,
        deltas=range(1, 8),
        scale=args.scale,
        processes=1,
    )

    base_hit = points[0].hit_ratio or 1.0
    base_rt = points[0].mean_response_ms or 1.0
    rows = [
        (
            p.delta,
            f"{p.hit_ratio:.4f}",
            f"{p.hit_ratio / base_hit:.3f}",
            f"{p.mean_response_ms:.3f}",
            f"{p.mean_response_ms / base_rt:.3f}",
        )
        for p in points
    ]
    print(
        f"delta sweep on {args.workload} "
        f"({args.cache_mb}MB-equivalent cache, scale={args.scale:g}):\n"
    )
    print(
        format_table(
            ("delta", "HitRatio", "vs d=1", "Resp(ms)", "vs d=1"), rows
        )
    )
    print(
        f"\nRecommended delta: {recommend_delta(points)} "
        f"(paper's choice: 5)"
    )


if __name__ == "__main__":
    main()
