#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Runs all thirteen experiments (Tables 1-2, Figures 2-3 and 7-13, plus
the beyond-paper ablations and seed study), printing each one's rows and
writing the combined output to ``--out`` (default:
``reproduction_report.txt``).  At the default 1/32 scale this takes
roughly 15-30 minutes on one core; pass ``--scale`` to trade fidelity
for time.

Run:  python examples/reproduce_paper.py --scale 0.015625
"""

from __future__ import annotations

import argparse
import importlib
import time
from pathlib import Path

from repro.experiments.common import ExperimentSettings
from repro.traces.workloads import WORKLOAD_ORDER

EXPERIMENTS = [
    ("Table 1", "repro.experiments.table1_config"),
    ("Table 2", "repro.experiments.table2_traces"),
    ("Figure 2", "repro.experiments.fig2_cdf"),
    ("Figure 3", "repro.experiments.fig3_large_hits"),
    ("Figure 7", "repro.experiments.fig7_delta"),
    ("Figure 8", "repro.experiments.fig8_response_time"),
    ("Figure 9", "repro.experiments.fig9_hit_ratio"),
    ("Figure 10", "repro.experiments.fig10_eviction_batch"),
    ("Figure 11", "repro.experiments.fig11_write_count"),
    ("Figure 12", "repro.experiments.fig12_space_overhead"),
    ("Figure 13", "repro.experiments.fig13_list_occupancy"),
    ("Ablation (mechanisms)", "repro.experiments.ablation_lists"),
    ("Ablation (policies)", "repro.experiments.ablation_policies"),
    ("Ablation (device)", "repro.experiments.ablation_device"),
    ("Wear study", "repro.experiments.wear_study"),
    ("Cache scaling", "repro.experiments.cache_scaling"),
    ("MDTS sensitivity", "repro.experiments.mdts_sensitivity"),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 32)
    parser.add_argument("--out", default="reproduction_report.txt")
    parser.add_argument(
        "--workloads", nargs="+", default=list(WORKLOAD_ORDER),
        choices=WORKLOAD_ORDER,
    )
    parser.add_argument("--skip", nargs="*", default=[],
                        help="experiment names to skip (e.g. 'Figure 8')")
    args = parser.parse_args()

    lines: list[str] = []

    def emit(text: str) -> None:
        print(text)
        lines.append(text)

    settings = ExperimentSettings(
        scale=args.scale, workloads=list(args.workloads), out=emit
    )
    t_start = time.time()
    for label, module_name in EXPERIMENTS:
        if label in args.skip:
            emit(f"\n[skipped {label}]")
            continue
        emit(f"\n{'#' * 72}\n# {label}  ({module_name})\n{'#' * 72}")
        t0 = time.time()
        module = importlib.import_module(module_name)
        module.run(settings)
        emit(f"[{label} done in {time.time() - t0:.1f}s]")

    emit(
        f"\nAll experiments finished in {(time.time() - t_start) / 60:.1f} "
        f"minutes at scale {args.scale:g}."
    )
    Path(args.out).write_text("\n".join(lines) + "\n")
    print(f"\nReport written to {args.out}")


if __name__ == "__main__":
    main()
