#!/usr/bin/env python3
"""Policy shoot-out: all eight cache schemes across the six workloads.

Extends the paper's four-way comparison (LRU / BPLRU / VBBMS /
Req-block) with the related-work schemes it discusses but does not plot
(FIFO, LFU, CFLRU, FAB).  Prints one hit-ratio table and one
flash-write table, paper workload order.

Run:  python examples/policy_shootout.py [--scale 0.03125]
"""

from __future__ import annotations

import argparse

from repro import WORKLOAD_ORDER, available_policies
from repro.sim.replay import ReplayConfig, replay_cache_only
from repro.sim.report import format_table
from repro.traces.workloads import get_workload, scaled_cache_bytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 64)
    parser.add_argument("--cache-mb", type=int, default=16)
    args = parser.parse_args()

    policies = available_policies()
    cache_bytes = scaled_cache_bytes(args.cache_mb, args.scale)
    hits = []
    writes = []
    for workload in WORKLOAD_ORDER:
        trace = get_workload(workload, args.scale)
        hit_row = [workload]
        write_row = [workload]
        for policy in policies:
            m = replay_cache_only(
                trace, ReplayConfig(policy=policy, cache_bytes=cache_bytes)
            )
            hit_row.append(f"{m.hit_ratio:.3f}")
            write_row.append(m.host_flush_pages)
        hits.append(tuple(hit_row))
        writes.append(tuple(write_row))

    print(f"Hit ratio ({args.cache_mb}MB-equivalent cache, scale={args.scale:g}):")
    print(format_table(("Trace", *policies), hits))
    print("\nPages flushed to flash:")
    print(format_table(("Trace", *policies), writes))
    print(
        "\nReading the table: Req-block should lead or tie the hit-ratio "
        "columns (paper Fig. 9), with VBBMS closest behind; FAB's "
        "size-only eviction and FIFO's recency-blindness trail on the "
        "hot-small-write traces."
    )


if __name__ == "__main__":
    main()
