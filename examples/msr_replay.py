#!/usr/bin/env python3
"""Replay a real MSR-Cambridge trace file (when you have one).

The offline reproduction ships calibrated synthetic workloads, but the
whole pipeline accepts the real block traces the paper used.  Download
any MSR-Cambridge volume (e.g. ``hm_1.csv`` from SNIA IOTTA), then:

    python examples/msr_replay.py /path/to/hm_1.csv [--cache-mb 16]

The script parses the CSV (gzip ok), prints the Table-2 row for the
trace, and runs the paper's four-policy comparison on it.  Without an
argument it demonstrates the same flow on a small synthetic file it
writes to a temp directory, so it is runnable offline.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro import characterize, load_msr_trace
from repro.cache.registry import PAPER_COMPARISON
from repro.sim.replay import ReplayConfig, replay_trace
from repro.sim.report import format_table
from repro.traces.msr import dump_msr_csv
from repro.traces.workloads import get_workload


def _demo_file() -> Path:
    """Write a small synthetic trace in MSR format and return its path."""
    trace = get_workload("usr_0", scale=1 / 256)
    path = Path(tempfile.mkdtemp(prefix="reqblock-")) / "demo_msr.csv"
    with open(path, "w") as fh:
        dump_msr_csv(trace, fh)
    print(f"(no trace given: wrote a demo MSR file to {path})\n")
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="MSR CSV path (.csv or .csv.gz)")
    parser.add_argument("--cache-mb", type=int, default=16)
    parser.add_argument("--limit", type=int, default=None,
                        help="replay only the first N requests")
    args = parser.parse_args()

    if args.trace:
        path = Path(args.trace)
    else:
        path = _demo_file()
        # The demo trace is tiny; shrink the cache so eviction happens.
        args.cache_mb = 1
    if not path.exists():
        sys.exit(f"trace file not found: {path}")

    trace = load_msr_trace(path, limit=args.limit)
    spec = characterize(trace)
    print(
        format_table(
            ("Trace", "Req#", "WrRatio", "WrSize", "FreqR(Wr)"), [spec.row()]
        )
    )

    cache_bytes = args.cache_mb * 1024 * 1024
    rows = []
    for policy in PAPER_COMPARISON:
        m = replay_trace(trace, ReplayConfig(policy=policy, cache_bytes=cache_bytes))
        rows.append(
            (policy, f"{m.hit_ratio:.3f}", f"{m.mean_response_ms:.3f}",
             m.flash_total_writes)
        )
    print()
    print(format_table(("Policy", "HitRatio", "MeanResp(ms)", "FlashWrites"), rows))


if __name__ == "__main__":
    main()
