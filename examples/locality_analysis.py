#!/usr/bin/env python3
"""Why does Req-block win?  Reuse-distance evidence.

For each paper workload this example computes Mattson stack distances
and prints:

* the LRU miss-ratio curve (MRC) across cache sizes — how much any
  recency-based policy can possibly get from more DRAM;
* the reuse profiles of pages written by small vs large requests — the
  paper's core premise, measured directly: small-write pages re-use
  heavily at short distances, large-write pages barely re-use at all.

A policy that preferentially retains small-request data (Req-block)
harvests the short-distance mass with a fraction of the capacity.

Run:  python examples/locality_analysis.py [--scale 0.015625]
"""

from __future__ import annotations

import argparse

from repro.analysis.reuse import reuse_profile, split_reuse_by_size
from repro.sim.report import format_table, sparkline
from repro.traces.stats import mean_request_pages
from repro.traces.workloads import WORKLOAD_ORDER, get_workload, scaled_cache_bytes

CACHE_SIZES_MB = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 64)
    parser.add_argument(
        "--workloads", nargs="+", default=["hm_1", "src1_2", "proj_0"],
        choices=WORKLOAD_ORDER,
    )
    args = parser.parse_args()

    for name in args.workloads:
        trace = get_workload(name, args.scale)
        profile = reuse_profile(trace)
        sizes_pages = [
            scaled_cache_bytes(mb, args.scale) // 4096 for mb in CACHE_SIZES_MB
        ]
        mrc = profile.miss_ratio_curve(sizes_pages)
        print(f"\n=== {name} (scale={args.scale:g}) ===")
        print(
            format_table(
                ("CacheMB(paper)", "Pages", "LRU miss ratio"),
                [
                    (mb, c, f"{miss:.3f}")
                    for mb, (c, miss) in zip(CACHE_SIZES_MB, mrc)
                ],
            )
        )
        print("MRC shape: " + sparkline([m for _c, m in mrc], width=len(mrc)))

        boundary = mean_request_pages(trace)
        small, large = split_reuse_by_size(trace, boundary)
        rows = []
        for label, p in (("small-write pages", small), ("large-write pages", large)):
            reuse_frac = (
                p.finite_accesses / p.total_accesses if p.total_accesses else 0.0
            )
            rows.append(
                (
                    label,
                    p.total_accesses,
                    f"{reuse_frac:.1%}",
                    p.median_distance() if p.median_distance() is not None else "-",
                )
            )
        print()
        print(
            format_table(
                ("Page class", "Accesses", "TouchedAgain", "MedianDist"), rows
            )
        )
        print(
            "(Large-write pages are 'touched again' mostly by stream "
            "wrap-around overwrites at very long distances — uncacheable; "
            "small-write pages re-use at short distances, which is the "
            "mass Req-block retains.)"
        )


if __name__ == "__main__":
    main()
